"""Open-loop traffic against a RAID array (overload experiments).

Closed-loop generators (:class:`~repro.workloads.fio.FioWorkload`) are
self-clocking: when the array slows down the workers slow down with it, so
offered load collapses to match capacity and overload never materialises.
The open-loop generator instead fires arrivals from a clock that does not
listen to the array — a seeded Poisson process, or a bursty on/off
modulation of one — which is what datacenter frontends look like and what
makes goodput collapse observable.

Every arrival is fire-and-forget: a fresh process issues one read or write
and records its outcome; the arrival clock never waits.  ``goodput``
counts only bytes whose I/O completed *within its latency budget* during
the measurement window — work the array finished but delivered late counts
toward throughput, not goodput.  Typed overload rejections
(:class:`~repro.qos.errors.Busy`, :class:`~repro.qos.errors.DeadlineExceeded`)
are tallied separately from ordinary terminal I/O errors.

On a QoS-armed array the generator stamps each I/O with an absolute
deadline (arrival time + budget) so the datapath can shed late work; on an
unarmed array it issues the exact historic call — the generator itself
never perturbs a disarmed run.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.nvmeof.messages import IoError
from repro.qos.errors import Busy, DeadlineExceeded
from repro.sim.core import Environment
from repro.storage.integrity import ChecksumError

MB = 1_000_000
NS_PER_S = 1_000_000_000


@dataclass(frozen=True)
class OpenLoopResult:
    """Outcome of one open-loop measurement window."""

    offered_mb_s: float
    throughput_mb_s: float
    goodput_mb_s: float
    ops_offered: int
    ops_completed: int
    ops_good: int
    #: typed queue-full fast-rejects (admission gate or target queue)
    busy_rejections: int
    #: typed deadline failures (budget spent before completion)
    deadline_failures: int
    #: ordinary terminal I/O errors (retry budget / §5.4 exhaustion)
    io_errors: int
    #: I/Os that completed, but after their latency budget
    late_completions: int
    latency: LatencySummary
    measured_ns: int

    @property
    def goodput_fraction(self) -> float:
        """Goodput as a fraction of offered load (1.0 = nothing lost)."""
        if self.ops_offered == 0:
            return 0.0
        return self.ops_good / self.ops_offered


class OpenLoopWorkload:
    """Fire-and-forget arrival generator with per-I/O latency budgets.

    ``rate_iops`` is the *offered* arrival rate; ``arrival`` selects the
    clock: ``"poisson"`` (memoryless), ``"bursty"`` (an on/off Poisson
    whose on-phase runs at ``burst_factor`` times the mean rate for
    ``burst_duty`` of every ``burst_period_ns``, with the off-phase scaled
    to preserve the mean), or ``"diurnal"`` (a sinusoidal modulation of the
    Poisson rate — period ``diurnal_period_ns``, peak-to-mean ratio
    ``1 + diurnal_amplitude`` — the shape of a frontend's day/night cycle
    compressed onto the sim clock).
    """

    def __init__(
        self,
        array,
        io_size: int,
        rate_iops: float,
        read_fraction: float = 1.0,
        capacity: Optional[int] = None,
        seed: int = 4321,
        deadline_ns: Optional[int] = None,
        arrival: str = "poisson",
        burst_factor: float = 4.0,
        burst_period_ns: int = 2_000_000,
        burst_duty: float = 0.25,
        diurnal_period_ns: int = 20_000_000,
        diurnal_amplitude: float = 0.5,
    ) -> None:
        if io_size <= 0:
            raise ValueError(f"io_size must be positive, got {io_size}")
        if rate_iops <= 0:
            raise ValueError(f"rate_iops must be positive, got {rate_iops}")
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError(f"read_fraction out of range: {read_fraction}")
        if arrival not in ("poisson", "bursty", "diurnal"):
            raise ValueError(f"unknown arrival process: {arrival!r}")
        if arrival == "bursty":
            if burst_factor < 1.0:
                raise ValueError(f"burst_factor must be >= 1, got {burst_factor}")
            if not 0.0 < burst_duty < 1.0:
                raise ValueError(f"burst_duty out of range: {burst_duty}")
            if burst_period_ns <= 0:
                raise ValueError("burst_period_ns must be positive")
        if arrival == "diurnal":
            if not 0.0 <= diurnal_amplitude < 1.0:
                raise ValueError(
                    f"diurnal_amplitude out of range: {diurnal_amplitude}"
                )
            if diurnal_period_ns <= 0:
                raise ValueError("diurnal_period_ns must be positive")
        self.array = array
        self.env: Environment = array.env
        self.io_size = io_size
        self.rate_iops = rate_iops
        self.read_fraction = read_fraction
        self.deadline_ns = deadline_ns
        self.arrival = arrival
        self.burst_factor = burst_factor
        self.burst_period_ns = burst_period_ns
        self.burst_duty = burst_duty
        self.diurnal_period_ns = diurnal_period_ns
        self.diurnal_amplitude = diurnal_amplitude
        geometry = array.geometry
        default_cap = geometry.stripe_data_bytes * 4096
        self.capacity = capacity if capacity is not None else default_cap
        if self.capacity < io_size:
            raise ValueError("capacity smaller than one I/O")
        self._rng = random.Random(seed)
        self._slots = max(1, self.capacity // io_size)
        #: stamp absolute deadlines only on a QoS-armed array; a disarmed
        #: array gets the exact historic read()/write() call
        self._armed = getattr(array, "qos", None) is not None
        self.reads = LatencyRecorder()
        self.writes = LatencyRecorder()
        self._measuring = False
        self.ops_offered = 0
        self.ops_completed = 0
        self.ops_good = 0
        self.busy_rejections = 0
        self.deadline_failures = 0
        self.io_errors = 0
        self.late_completions = 0
        self._offered_bytes = 0
        self._throughput_bytes = 0
        self._good_bytes = 0

    # -- arrival clock -----------------------------------------------------

    def _current_rate(self) -> float:
        """Instantaneous arrival rate (IOPS) at the current sim time."""
        if self.arrival == "poisson":
            return self.rate_iops
        if self.arrival == "diurnal":
            phase = 2.0 * math.pi * (self.env.now % self.diurnal_period_ns)
            return self.rate_iops * (
                1.0 + self.diurnal_amplitude * math.sin(phase / self.diurnal_period_ns)
            )
        pos = self.env.now % self.burst_period_ns
        if pos < self.burst_duty * self.burst_period_ns:
            return self.rate_iops * self.burst_factor
        # off-phase rate chosen so the long-run mean stays rate_iops
        off = (
            self.rate_iops
            * (1.0 - self.burst_duty * self.burst_factor)
            / (1.0 - self.burst_duty)
        )
        return max(off, 0.05 * self.rate_iops)

    def _arrivals(self, stop_event):
        rng = self._rng
        while not stop_event.triggered:
            rate = self._current_rate()
            gap = max(1, int(rng.expovariate(rate / NS_PER_S)))
            yield self.env.timeout(gap)
            if stop_event.triggered:
                break
            offset = rng.randrange(self._slots) * self.io_size
            is_read = rng.random() < self.read_fraction
            measured = self._measuring
            if measured:
                self.ops_offered += 1
                self._offered_bytes += self.io_size
            self.env.process(
                self._issue(offset, is_read, measured), name="openloop.io"
            )

    # -- one fire-and-forget I/O -------------------------------------------

    def _issue(self, offset: int, is_read: bool, measured: bool):
        start = self.env.now
        try:
            if self._armed and self.deadline_ns is not None:
                deadline = start + self.deadline_ns
                if is_read:
                    yield self.array.read(
                        offset, self.io_size, deadline_ns=deadline
                    )
                else:
                    yield self.array.write(
                        offset, self.io_size, deadline_ns=deadline
                    )
            elif is_read:
                yield self.array.read(offset, self.io_size)
            else:
                yield self.array.write(offset, self.io_size)
        except Busy:
            if measured:
                self.busy_rejections += 1
            return
        except DeadlineExceeded:
            if measured:
                self.deadline_failures += 1
            return
        except (IoError, ChecksumError):
            if measured:
                self.io_errors += 1
            return
        if not measured:
            return
        latency = self.env.now - start
        self.ops_completed += 1
        self._throughput_bytes += self.io_size
        (self.reads if is_read else self.writes).record(latency)
        if self.deadline_ns is None or latency <= self.deadline_ns:
            self.ops_good += 1
            self._good_bytes += self.io_size
        else:
            self.late_completions += 1

    # -- measurement window ------------------------------------------------
    #
    # The window machinery is split into ``start`` / ``open_window`` /
    # ``close_window`` / ``snapshot`` so an external orchestrator (the
    # rack layer's multi-tenant workload) can run several streams against
    # one shared clock and cut every tenant's window at the same instants.
    # ``run`` composes them for the historic single-stream case.

    def start(self) -> "Event":
        """Spawn the arrival clock; returns the stop event ending it."""
        stop = self.env.event()
        self.env.process(self._arrivals(stop), name="openloop.clock")
        return stop

    def open_window(self) -> None:
        """Zero every counter and begin attributing arrivals to a window."""
        self._measuring = True
        self.ops_offered = self.ops_completed = self.ops_good = 0
        self.busy_rejections = self.deadline_failures = 0
        self.io_errors = self.late_completions = 0
        self._offered_bytes = self._throughput_bytes = self._good_bytes = 0
        self.reads = LatencyRecorder()
        self.writes = LatencyRecorder()

    def close_window(self) -> None:
        """Stop attributing new arrivals (in-flight measured I/Os still
        settle into the window's counters when they complete)."""
        self._measuring = False

    def snapshot(self, measure_ns: int) -> OpenLoopResult:
        """Freeze the current counters into an :class:`OpenLoopResult`."""
        summary = LatencyRecorder.merged(self.reads, self.writes).summarize()
        return OpenLoopResult(
            offered_mb_s=self._offered_bytes * 1e9 / measure_ns / MB,
            throughput_mb_s=self._throughput_bytes * 1e9 / measure_ns / MB,
            goodput_mb_s=self._good_bytes * 1e9 / measure_ns / MB,
            ops_offered=self.ops_offered,
            ops_completed=self.ops_completed,
            ops_good=self.ops_good,
            busy_rejections=self.busy_rejections,
            deadline_failures=self.deadline_failures,
            io_errors=self.io_errors,
            late_completions=self.late_completions,
            latency=summary,
            measured_ns=measure_ns,
        )

    def run(
        self,
        warmup_ns: int = 2_000_000,
        measure_ns: int = 20_000_000,
        drain_ns: Optional[int] = None,
    ) -> OpenLoopResult:
        """Warm up, measure for ``measure_ns``, drain, return results.

        Arrivals admitted during the window are attributed to it even when
        they complete during the drain — an open-loop window cuts on
        arrival time, not completion time.
        """
        stop = self.start()
        self.env.run(until=self.env.now + warmup_ns)
        self.open_window()
        start = self.env.now
        self.env.run(until=start + measure_ns)
        self.close_window()
        if drain_ns is None:
            budget = self.deadline_ns if self.deadline_ns is not None else 0
            drain_ns = max(measure_ns // 2, 4 * budget)
        self.env.run(until=self.env.now + drain_ns)
        stop.succeed()
        self.env.run(until=self.env.now + 1)
        return self.snapshot(measure_ns)
