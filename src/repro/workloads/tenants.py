"""Multi-tenant open-loop traffic against a rack of arrays.

One :class:`TenantSpec` describes one tenant host: an open-loop arrival
stream (Poisson, bursty or diurnal — datacenter frontends compressed onto
the sim clock), a per-I/O latency budget, and the volume it rents from
the rack (size, expected demand, and QoS knobs — fair-share weight and
token-bucket rate limit).  :class:`MultiTenantWorkload` is the
orchestrator: it places every tenant's volume through the rack's
:class:`~repro.rack.volumes.VolumeManager`, runs all the arrival clocks
against the one shared simulation, and cuts every tenant's measurement
window at the same instants, so per-tenant goodput/latency numbers are
directly comparable.

``run_phases`` measures several back-to-back windows — the instrument for
before/after experiments such as hot-spot migration (phase 1: saturated,
phase 2: after the balancer moved a volume).  A short settle gap between
phases lets in-flight I/Os complete so each phase's counters are
(deterministically) self-contained.

Seeds derive from tenant names (CRC-32) unless given, so adding a tenant
never perturbs the arrival sequence of the others.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.workloads.openloop import OpenLoopResult, OpenLoopWorkload

MB = 1_000_000
NS_PER_S = 1_000_000_000


@dataclass
class TenantSpec:
    """One tenant: arrival process, latency budget and rented volume.

    ``rate_iops`` is the mean offered arrival rate; ``arrival`` selects
    ``"poisson"``, ``"bursty"`` (with ``burst_factor``/``burst_period_ns``/
    ``burst_duty``) or ``"diurnal"`` (with ``diurnal_period_ns``/
    ``diurnal_amplitude``) exactly as on
    :class:`~repro.workloads.openloop.OpenLoopWorkload`.  ``deadline_ns``
    is the per-I/O latency budget (ns) goodput is judged against.
    ``volume_bytes`` sizes the rented volume; ``weight``,
    ``rate_limit_mb_s`` (MB/s) and ``burst_bytes`` are its QoS knobs,
    active only on a QoS-armed rack.  ``pin`` forces placement onto a
    named array (``None`` = policy-chosen); ``seed`` defaults to a stable
    CRC-32 of the tenant name.
    """

    name: str
    io_size: int
    rate_iops: float
    volume_bytes: int
    read_fraction: float = 1.0
    deadline_ns: Optional[int] = None
    arrival: str = "poisson"
    burst_factor: float = 4.0
    burst_period_ns: int = 2_000_000
    burst_duty: float = 0.25
    diurnal_period_ns: int = 20_000_000
    diurnal_amplitude: float = 0.5
    weight: float = 1.0
    rate_limit_mb_s: Optional[float] = None
    burst_bytes: int = 1 << 20
    pin: Optional[str] = None
    seed: Optional[int] = None

    @property
    def demand_mb_s(self) -> float:
        """Mean offered load in MB/s (what load-aware placement balances)."""
        return self.rate_iops * self.io_size / MB

    def resolved_seed(self) -> int:
        """The arrival-clock seed: explicit, or CRC-32 of the name."""
        if self.seed is not None:
            return self.seed
        return zlib.crc32(self.name.encode()) & 0x7FFFFFFF


class MultiTenantWorkload:
    """Drive N tenant streams against one rack, windows cut in lockstep.

    Construction places every tenant's volume (so placement is part of the
    deterministic record — inspect ``rack.volumes.describe()``);
    :meth:`run` measures one shared window and returns per-tenant
    :class:`~repro.workloads.openloop.OpenLoopResult` objects;
    :meth:`run_phases` measures several consecutive windows (before/after
    instrumentation for migration experiments).
    """

    def __init__(self, rack, tenants: Sequence[TenantSpec]) -> None:
        from repro.rack.volumes import VolumeSpec  # runtime import: keep layering loose

        if not tenants:
            raise ValueError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.rack = rack
        self.env = rack.env
        self.tenants = list(tenants)
        self.volumes = {}
        self.streams: Dict[str, OpenLoopWorkload] = {}
        for spec in self.tenants:
            volume = rack.volumes.create(
                VolumeSpec(
                    name=spec.name,
                    size_bytes=spec.volume_bytes,
                    demand_mb_s=spec.demand_mb_s,
                    weight=spec.weight,
                    rate_limit_mb_s=spec.rate_limit_mb_s,
                    burst_bytes=spec.burst_bytes,
                ),
                on=spec.pin,
            )
            self.volumes[spec.name] = volume
            self.streams[spec.name] = OpenLoopWorkload(
                volume,
                spec.io_size,
                rate_iops=spec.rate_iops,
                read_fraction=spec.read_fraction,
                capacity=spec.volume_bytes,
                seed=spec.resolved_seed(),
                deadline_ns=spec.deadline_ns,
                arrival=spec.arrival,
                burst_factor=spec.burst_factor,
                burst_period_ns=spec.burst_period_ns,
                burst_duty=spec.burst_duty,
                diurnal_period_ns=spec.diurnal_period_ns,
                diurnal_amplitude=spec.diurnal_amplitude,
            )

    def _default_drain(self, measure_ns: int) -> int:
        budgets = [t.deadline_ns or 0 for t in self.tenants]
        return max(measure_ns // 2, 4 * max(budgets))

    def run(
        self,
        warmup_ns: int = 2_000_000,
        measure_ns: int = 10_000_000,
        drain_ns: Optional[int] = None,
    ) -> Dict[str, OpenLoopResult]:
        """Warm up, measure one shared window, drain; results per tenant."""
        results = self.run_phases(
            [measure_ns], warmup_ns=warmup_ns, settle_ns=drain_ns
        )
        return {name: phases[0] for name, phases in results.items()}

    def run_phases(
        self,
        phase_ns: Sequence[int],
        warmup_ns: int = 2_000_000,
        settle_ns: Optional[int] = None,
    ) -> Dict[str, List[OpenLoopResult]]:
        """Measure consecutive windows; per-tenant results for each phase.

        Between phases (and after the last) the clocks keep arriving but
        counters are frozen for ``settle_ns`` (default: the longest
        deadline-derived drain), so in-flight I/Os of phase *k* settle into
        phase *k*'s numbers instead of leaking into phase *k+1*.
        """
        if not phase_ns:
            raise ValueError("need at least one phase")
        env = self.env
        stops = [stream.start() for stream in self.streams.values()]
        env.run(until=env.now + warmup_ns)
        collected: Dict[str, List[OpenLoopResult]] = {t.name: [] for t in self.tenants}
        for measure_ns in phase_ns:
            gap = settle_ns if settle_ns is not None else self._default_drain(measure_ns)
            for stream in self.streams.values():
                stream.open_window()
            env.run(until=env.now + measure_ns)
            for stream in self.streams.values():
                stream.close_window()
            env.run(until=env.now + gap)
            for name, stream in self.streams.items():
                collected[name].append(stream.snapshot(measure_ns))
        for stop in stops:
            stop.succeed()
        env.run(until=env.now + 1)
        return collected
