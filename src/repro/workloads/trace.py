"""Block-trace replay.

FIO-style closed loops (``repro.workloads.fio``) measure steady-state
capacity; production storage sees *open-loop* arrivals — bursts land
whether or not earlier I/O finished.  :class:`TraceWorkload` replays a
block trace with its original timing, which is how latency under burst
(and GC interference, and degraded-state brownouts) is evaluated.

Traces are lists of :class:`TraceRecord`; helpers build synthetic traces
(Poisson-ish steady load, on/off bursts, sequential scans) and parse/emit
a simple CSV format (``timestamp_ns,op,offset,nbytes``) compatible with
externally converted traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, TextIO

from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.sim.core import AllOf, Environment, Event


@dataclass(frozen=True)
class TraceRecord:
    """One I/O of a block trace."""

    timestamp_ns: int
    op: str  #: 'read' | 'write'
    offset: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.op not in ("read", "write"):
            raise ValueError(f"bad op {self.op!r}")
        if self.timestamp_ns < 0 or self.offset < 0 or self.nbytes <= 0:
            raise ValueError(f"invalid record {self}")


@dataclass(frozen=True)
class TraceResult:
    completed: int
    latency: LatencySummary
    makespan_ns: int
    #: highest number of I/Os simultaneously in flight during the replay
    peak_inflight: int


class TraceWorkload:
    """Open-loop trace replay against a block device/array."""

    def __init__(self, array, records: Iterable[TraceRecord]) -> None:
        self.array = array
        self.env: Environment = array.env
        self.records = sorted(records, key=lambda r: r.timestamp_ns)
        self.latencies = LatencyRecorder()
        self._inflight = 0
        self._peak = 0

    def run(self) -> TraceResult:
        """Replay the whole trace; returns once every I/O completed."""
        done = self.env.process(self._replay(), name="trace")
        self.env.run(until=done)
        return TraceResult(
            completed=len(self.latencies),
            latency=self.latencies.summarize(),
            makespan_ns=self.env.now,
            peak_inflight=self._peak,
        )

    def _replay(self):
        base = self.env.now
        completions: List[Event] = []
        for record in self.records:
            submit_at = base + record.timestamp_ns
            if submit_at > self.env.now:
                yield self.env.timeout(submit_at - self.env.now)
            completions.append(self.env.process(self._one(record)))
        yield AllOf(self.env, completions)

    def _one(self, record: TraceRecord):
        self._inflight += 1
        self._peak = max(self._peak, self._inflight)
        start = self.env.now
        if record.op == "read":
            yield self.array.read(record.offset, record.nbytes)
        else:
            yield self.array.write(record.offset, record.nbytes)
        self.latencies.record(self.env.now - start)
        self._inflight -= 1


# -- synthetic trace builders ---------------------------------------------------


def steady_trace(
    duration_ns: int,
    iops: float,
    io_bytes: int,
    capacity: int,
    read_fraction: float = 1.0,
    seed: int = 0,
) -> List[TraceRecord]:
    """Poisson arrivals at a target IOPS over ``duration_ns``."""
    rng = random.Random(seed)
    records = []
    t = 0.0
    mean_gap = 1e9 / iops
    slots = max(1, capacity // io_bytes)
    while t < duration_ns:
        t += rng.expovariate(1.0) * mean_gap
        if t >= duration_ns:
            break
        op = "read" if rng.random() < read_fraction else "write"
        offset = rng.randrange(slots) * io_bytes
        records.append(TraceRecord(int(t), op, offset, io_bytes))
    return records


def bursty_trace(
    num_bursts: int,
    burst_iops: float,
    burst_ns: int,
    gap_ns: int,
    io_bytes: int,
    capacity: int,
    read_fraction: float = 0.5,
    seed: int = 0,
) -> List[TraceRecord]:
    """On/off bursts: ``burst_ns`` at ``burst_iops``, then idle ``gap_ns``."""
    records: List[TraceRecord] = []
    start = 0
    for burst in range(num_bursts):
        chunk = steady_trace(
            burst_ns, burst_iops, io_bytes, capacity, read_fraction,
            seed=seed + burst,
        )
        records.extend(
            TraceRecord(start + r.timestamp_ns, r.op, r.offset, r.nbytes)
            for r in chunk
        )
        start += burst_ns + gap_ns
    return records


def scan_trace(
    capacity: int,
    io_bytes: int,
    interarrival_ns: int,
    op: str = "read",
) -> List[TraceRecord]:
    """A sequential full-device scan (e.g. a backup or scrub pass)."""
    records = []
    t = 0
    for offset in range(0, capacity - io_bytes + 1, io_bytes):
        records.append(TraceRecord(t, op, offset, io_bytes))
        t += interarrival_ns
    return records


# -- CSV round-trip ------------------------------------------------------------


def write_csv(records: Iterable[TraceRecord], fh: TextIO) -> None:
    """Emit ``timestamp_ns,op,offset,nbytes`` lines."""
    fh.write("timestamp_ns,op,offset,nbytes\n")
    for record in records:
        fh.write(f"{record.timestamp_ns},{record.op},{record.offset},{record.nbytes}\n")


def read_csv(fh: TextIO) -> List[TraceRecord]:
    """Parse the format written by :func:`write_csv` (header optional)."""
    records = []
    for line_number, line in enumerate(fh, start=1):
        line = line.strip()
        if not line or line.startswith("timestamp_ns"):
            continue
        parts = line.split(",")
        if len(parts) != 4:
            raise ValueError(f"line {line_number}: expected 4 fields, got {len(parts)}")
        timestamp, op, offset, nbytes = parts
        records.append(TraceRecord(int(timestamp), op.strip(), int(offset), int(nbytes)))
    return records
