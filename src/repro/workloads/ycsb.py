"""YCSB core workloads A-F against any key-value interface (§9.6).

The store must provide ``get(key) -> Event``, ``put(key) -> Event`` and
(for YCSB-F) read-modify-write is composed as get followed by put.  Inserts
(YCSB-D) extend the keyspace.  Workload definitions follow the YCSB core
package:

=========  =======================  ============  ==============
workload   operation mix            distribution  the paper runs
=========  =======================  ============  ==============
A          50% read / 50% update    zipfian       yes
B          95% read /  5% update    zipfian       yes
C          100% read                zipfian       yes
D          95% read /  5% insert    latest        yes
E          scan-heavy               —             no (needs scans)
F          50% read / 50% RMW       zipfian       yes
=========  =======================  ============  ==============
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.workloads.generators import LatestGenerator, UniformGenerator, ZipfianGenerator


@dataclass(frozen=True)
class YcsbSpec:
    """Operation mix of one YCSB workload."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    rmw: float = 0.0
    scan: float = 0.0
    #: maximum scan length (YCSB default 100), uniform in [1, max]
    max_scan_length: int = 100
    distribution: str = "zipfian"  #: zipfian | latest | uniform

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.rmw + self.scan
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: operation mix sums to {total}, not 1")


YCSB_WORKLOADS: Dict[str, YcsbSpec] = {
    "A": YcsbSpec("A", read=0.5, update=0.5),
    "B": YcsbSpec("B", read=0.95, update=0.05),
    "C": YcsbSpec("C", read=1.0),
    "D": YcsbSpec("D", read=0.95, insert=0.05, distribution="latest"),
    # E needs range scans; the paper skips it, we support it as an
    # extension for stores that implement scan() (the LSM KV store does)
    "E": YcsbSpec("E", scan=0.95, insert=0.05),
    "F": YcsbSpec("F", read=0.5, rmw=0.5),
}


@dataclass(frozen=True)
class YcsbResult:
    """Outcome of one YCSB measurement window: throughput in thousands of
    operations per second, the operation latency distribution (ns), and the
    window length ``measured_ns`` in simulated nanoseconds."""

    kiops: float
    latency: LatencySummary
    ops_completed: int
    measured_ns: int


class YcsbWorkload:
    """Closed-loop YCSB client pool against a KV store."""

    def __init__(
        self,
        store,
        spec: YcsbSpec,
        num_keys: int,
        clients: int = 16,
        seed: int = 7,
        uniform: bool = False,
    ) -> None:
        self.store = store
        self.env = store.env
        self.spec = spec
        self.clients = clients
        self._rng = random.Random(seed)
        if uniform:
            self._keys = UniformGenerator(num_keys, seed=seed)
        elif spec.distribution == "latest":
            self._keys = LatestGenerator(num_keys, seed=seed)
        elif spec.distribution == "zipfian":
            self._keys = ZipfianGenerator(num_keys, seed=seed)
        else:
            self._keys = UniformGenerator(num_keys, seed=seed)
        self.num_keys = num_keys
        self.latencies = LatencyRecorder()
        self._measuring = False
        self._ops = 0

    def _pick_op(self) -> str:
        r = self._rng.random()
        spec = self.spec
        if r < spec.read:
            return "read"
        if r < spec.read + spec.update:
            return "update"
        if r < spec.read + spec.update + spec.insert:
            return "insert"
        if r < spec.read + spec.update + spec.insert + spec.rmw:
            return "rmw"
        return "scan"

    def _client(self, stop_event):
        while not stop_event.triggered:
            op = self._pick_op()
            start = self.env.now
            if op == "read":
                key = self._keys.next() % self.num_keys
                yield self.store.get(key)
            elif op == "update":
                key = self._keys.next() % self.num_keys
                yield self.store.put(key)
            elif op == "insert":
                if isinstance(self._keys, LatestGenerator):
                    key = self._keys.record_insert() % self.num_keys
                else:
                    key = self._keys.next() % self.num_keys
                yield self.store.put(key)
            elif op == "rmw":  # read-modify-write
                key = self._keys.next() % self.num_keys
                yield self.store.get(key)
                yield self.store.put(key)
            else:  # range scan (YCSB-E)
                key = self._keys.next() % self.num_keys
                length = self._rng.randint(1, self.spec.max_scan_length)
                yield self.store.scan(key, length)
            if self._measuring:
                self.latencies.record(self.env.now - start)
                self._ops += 1

    def run(self, warmup_ns: int = 2_000_000, measure_ns: int = 30_000_000) -> YcsbResult:
        stop = self.env.event()
        for _ in range(self.clients):
            self.env.process(self._client(stop), name=f"ycsb-{self.spec.name}")
        self.env.run(until=self.env.now + warmup_ns)
        self._measuring = True
        self._ops = 0
        start = self.env.now
        self.env.run(until=start + measure_ns)
        self._measuring = False
        elapsed = self.env.now - start
        stop.succeed()
        self.env.run(until=self.env.now + 1)
        return YcsbResult(
            kiops=self._ops * 1e9 / elapsed / 1000,
            latency=self.latencies.summarize(),
            ops_completed=self._ops,
            measured_ns=elapsed,
        )
