"""Shared test harness for whole-array functional testing.

Builds a small functional-mode cluster, instantiates a controller over it
and provides a model-based random workload checker: every read is compared
byte-for-byte against a plain numpy shadow copy of the virtual device.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import ClusterConfig, build_cluster
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.raid.scrub import scrub_array
from repro.sim import Environment

KB = 1024
#: Small chunk so multi-stripe I/Os stay cheap to simulate.
TEST_CHUNK = 16 * KB


class ArrayHarness:
    """A functional controller + shadow model + convenience drivers."""

    def __init__(
        self,
        controller_cls,
        level=RaidLevel.RAID5,
        drives=5,
        chunk=TEST_CHUNK,
        stripes=24,
        **controller_kwargs,
    ):
        self.env = Environment()
        capacity = stripes * chunk
        self.config = ClusterConfig(num_servers=drives, functional_capacity=capacity)
        self.cluster = build_cluster(self.env, self.config)
        self.geometry = RaidGeometry(level, drives, chunk)
        self.array = controller_cls(self.cluster, self.geometry, **controller_kwargs)
        self.stripes = stripes
        self.capacity = stripes * self.geometry.stripe_data_bytes
        self.model = np.zeros(self.capacity, dtype=np.uint8)

    # -- synchronous drivers (run the sim until the op completes) ----------

    def write(self, offset, data):
        data = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
        self.env.run(until=self.array.write(offset, len(data), data))
        self.model[offset : offset + len(data)] = data

    def read(self, offset, nbytes) -> np.ndarray:
        return self.env.run(until=self.array.read(offset, nbytes))

    def check_read(self, offset, nbytes):
        got = self.read(offset, nbytes)
        expected = self.model[offset : offset + nbytes]
        assert np.array_equal(got, expected), (
            f"mismatch at [{offset}, {offset + nbytes}): "
            f"got {got[:16].tolist()}..., expected {expected[:16].tolist()}..."
        )

    def scrub(self):
        report = scrub_array(self.cluster.drives(), self.geometry, self.stripes)
        assert report.clean, f"parity inconsistent on stripes {report.bad_stripes}"

    def random_workload(self, seed=0, ops=40, max_io=None, read_fraction=0.4):
        """Random mixed read/write workload checked against the model."""
        rng = np.random.default_rng(seed)
        max_io = max_io or 3 * self.geometry.stripe_data_bytes
        for _ in range(ops):
            size = int(rng.integers(1, max_io))
            offset = int(rng.integers(0, self.capacity - size))
            if rng.random() < read_fraction:
                self.check_read(offset, size)
            else:
                payload = rng.integers(0, 256, size=size, dtype=np.uint8)
                self.write(offset, payload)
        # final full-device verification
        self.check_read(0, self.capacity)
