"""Tests for the application layer: object store, BlobFS, LSM KV store."""

import numpy as np
import pytest

from repro.apps import BlobFs, HashObjectStore, LsmConfig, LsmKvStore
from repro.apps.blobfs import BlobFsError
from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment

KB = 1024


def make_array(functional=0, drives=5, chunk=16 * KB):
    env = Environment()
    cluster = build_cluster(env, ClusterConfig(num_servers=drives, functional_capacity=functional))
    array = DraidArray(cluster, RaidGeometry(RaidLevel.RAID5, drives, chunk))
    return env, array


class TestObjectStore:
    def test_put_get_roundtrip_functional(self):
        env, array = make_array(functional=96 * 16 * KB)
        store = HashObjectStore(array, object_size=8 * KB, num_objects=16,
                                capacity=64 * 16 * KB)
        payload = bytes(range(256)) * 32  # 8 KiB

        def proc():
            yield store.put(3, payload)
            data = yield store.get(3)
            return bytes(data)

        assert env.run(until=env.process(proc())) == payload

    def test_distinct_keys_distinct_slots(self):
        env, array = make_array()
        store = HashObjectStore(array, object_size=8 * KB, num_objects=100)
        offsets = {store._slot_offset(k) for k in range(100)}
        assert len(offsets) > 90  # multiplicative hash: few collisions

    def test_counters(self):
        env, array = make_array()
        store = HashObjectStore(array, object_size=8 * KB)

        def proc():
            yield store.put(1)
            yield store.get(1)
            yield store.get(2)

        env.run(until=env.process(proc()))
        assert store.puts == 1
        assert store.gets == 2

    def test_invalid_object_size(self):
        env, array = make_array()
        with pytest.raises(ValueError):
            HashObjectStore(array, object_size=0)


class TestBlobFs:
    def make_fs(self, functional=False):
        cap = 1536 * 16 * KB  # per-drive functional capacity (1536 stripes)
        env, array = make_array(functional=cap if functional else 0)
        fs = BlobFs(array, cluster_bytes=64 * KB, capacity=1024 * 16 * KB)
        return env, array, fs

    def test_create_append_read(self):
        env, array, fs = self.make_fs(functional=True)
        payload = np.arange(100 * KB, dtype=np.uint64).astype(np.uint8)

        def proc():
            blob = yield fs.create_blob("log")
            yield fs.append(blob, len(payload), data=payload)
            data = yield fs.read(blob, 0, len(payload))
            return data

        data = env.run(until=env.process(proc()))
        assert np.array_equal(data, payload)

    def test_append_grows_and_allocates(self):
        env, array, fs = self.make_fs()

        def proc():
            blob = yield fs.create_blob("f")
            yield fs.append(blob, 200 * KB)
            return blob

        blob = env.run(until=env.process(proc()))
        assert fs.blob_size(blob) == 200 * KB
        assert len(fs._blobs[blob].clusters) == 4  # ceil(200/64)

    def test_superblock_heat(self):
        """Every metadata mutation rewrites the super block (§9.6)."""
        env, array, fs = self.make_fs()

        def proc():
            blob = yield fs.create_blob("hot")
            for _ in range(5):
                yield fs.append(blob, 64 * KB)  # each allocates a cluster

        env.run(until=env.process(proc()))
        assert fs.superblock_writes == 6  # 1 create + 5 growing appends

    def test_read_out_of_range(self):
        env, array, fs = self.make_fs()

        def proc():
            blob = yield fs.create_blob("s")
            yield fs.append(blob, 10 * KB)
            return blob

        blob = env.run(until=env.process(proc()))
        with pytest.raises(BlobFsError):
            fs.read(blob, 8 * KB, 4 * KB)

    def test_duplicate_name_rejected(self):
        env, array, fs = self.make_fs()
        env.run(until=fs.create_blob("x"))
        with pytest.raises(BlobFsError):
            fs.create_blob("x")

    def test_delete_returns_clusters(self):
        env, array, fs = self.make_fs()

        def proc():
            blob = yield fs.create_blob("tmp")
            yield fs.append(blob, 128 * KB)
            yield fs.delete_blob(blob)

        env.run(until=env.process(proc()))
        assert len(fs._free) == 2
        with pytest.raises(BlobFsError):
            fs.lookup("tmp")

    def test_filesystem_full(self):
        env, array, fs = self.make_fs()
        fs.num_clusters = 1

        def proc():
            blob = yield fs.create_blob("big")
            yield fs.append(blob, 128 * KB)  # needs 2 clusters

        with pytest.raises(BlobFsError):
            env.run(until=env.process(proc()))


class TestLsm:
    def make_store(self, **cfg):
        env, array = make_array()
        fs = BlobFs(array, cluster_bytes=256 * KB)
        config = LsmConfig(
            value_bytes=1024,
            memtable_bytes=64 * 1024,
            level0_compaction_trigger=3,
            block_cache_bytes=32 * 1024,
            **cfg,
        )
        return env, LsmKvStore(fs, config)

    def test_put_get_after_memtable(self):
        env, store = self.make_store()

        def proc():
            yield store.put(42)
            found = yield store.get(42)
            return found

        assert env.run(until=env.process(proc())) is True
        assert store.stats["memtable_hits"] == 1

    def test_flush_on_memtable_full(self):
        env, store = self.make_store()

        def proc():
            for k in range(200):  # 200 KiB > 64 KiB memtable
                yield store.put(k)
            yield env.timeout(50_000_000)  # let background flush settle

        env.run(until=env.process(proc()))
        assert store.stats["flushes"] >= 2
        total_sst_keys = set()
        for level in store._levels:
            for sst in level:
                total_sst_keys |= sst.keys
        assert len(total_sst_keys | store._memtable) == 200

    def test_get_from_sst_does_io(self):
        env, store = self.make_store()

        def proc():
            for k in range(200):
                yield store.put(k)
            yield env.timeout(50_000_000)
            # key flushed long ago: requires an SST block read (cold cache)
            found = yield store.get(0)
            return found

        assert env.run(until=env.process(proc())) is True
        assert store.stats["sst_reads"] >= 1

    def test_missing_key_bloom_filtered(self):
        env, store = self.make_store(bloom_false_positive=0.0)

        def proc():
            for k in range(200):
                yield store.put(k)
            yield env.timeout(50_000_000)
            found = yield store.get(10_000)
            return found

        assert env.run(until=env.process(proc())) is False
        assert store.stats["bloom_skips"] >= 1

    def test_compaction_reduces_level0(self):
        env, store = self.make_store()

        def proc():
            for k in range(1200):
                yield store.put(k % 600)
            yield env.timeout(200_000_000)

        env.run(until=env.process(proc()))
        assert store.stats["compactions"] >= 1
        assert len(store._levels[0]) < store.config.level0_compaction_trigger

    def test_cache_hits_accumulate(self):
        env, store = self.make_store()

        def proc():
            for k in range(200):
                yield store.put(k)
            yield env.timeout(50_000_000)
            for _ in range(5):
                yield store.get(7)

        env.run(until=env.process(proc()))
        assert store.stats["cache_hits"] >= 1


class TestLsmScans:
    def make_store(self):
        env, array = make_array()
        fs = BlobFs(array, cluster_bytes=256 * KB)
        config = LsmConfig(
            value_bytes=1024,
            memtable_bytes=64 * 1024,
            level0_compaction_trigger=3,
            block_cache_bytes=32 * 1024,
        )
        return env, LsmKvStore(fs, config)

    def test_scan_finds_flushed_keys(self):
        env, store = self.make_store()

        def proc():
            for k in range(300):
                yield store.put(k)
            yield env.timeout(50_000_000)
            found = yield store.scan(100, 50)
            return found

        assert env.run(until=env.process(proc())) == 50
        assert store.stats["scans"] == 1

    def test_scan_counts_only_existing_keys(self):
        env, store = self.make_store()

        def proc():
            for k in range(10):
                yield store.put(k)
            found = yield store.scan(5, 100)  # keys 5..104, only 5..9 exist
            return found

        assert env.run(until=env.process(proc())) == 5

    def test_scan_reads_sst_blocks(self):
        env, store = self.make_store()

        def proc():
            for k in range(300):
                yield store.put(k)
            yield env.timeout(50_000_000)
            before = store.stats["sst_reads"]
            yield store.scan(0, 100)
            return store.stats["sst_reads"] - before

        assert env.run(until=env.process(proc())) >= 1

    def test_scan_validates_count(self):
        env, store = self.make_store()
        with pytest.raises(ValueError):
            store.scan(0, 0)

    def test_ycsb_e_runs_against_lsm(self):
        from repro.workloads import YCSB_WORKLOADS, YcsbWorkload

        env, store = self.make_store()

        def preload():
            for k in range(400):
                yield store.put(k)
            yield env.timeout(50_000_000)

        env.run(until=env.process(preload()))
        ycsb = YcsbWorkload(store, YCSB_WORKLOADS["E"], num_keys=400, clients=4)
        result = ycsb.run(warmup_ns=500_000, measure_ns=5_000_000)
        assert result.ops_completed > 5
        assert store.stats["scans"] > 0
