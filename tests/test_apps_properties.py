"""Model-based property tests for the application layer.

The LSM store is checked against a plain set (membership semantics across
memtable/flush/compaction must never lose or invent keys); BlobFS against
shadow byte strings (append/read across cluster boundaries).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import BlobFs, LsmConfig, LsmKvStore
from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment

KB = 1024


def make_array(functional=0):
    env = Environment()
    cluster = build_cluster(
        env, ClusterConfig(num_servers=5, functional_capacity=functional)
    )
    array = DraidArray(cluster, RaidGeometry(RaidLevel.RAID5, 5, 16 * KB))
    return env, array


class TestLsmModelBased:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["put", "get", "scan"]), st.integers(0, 300)),
            min_size=5,
            max_size=60,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_membership_matches_set_model(self, ops):
        env, array = make_array()
        fs = BlobFs(array, cluster_bytes=256 * KB)
        store = LsmKvStore(
            fs,
            LsmConfig(value_bytes=1024, memtable_bytes=32 * KB,
                      level0_compaction_trigger=3,
                      bloom_false_positive=0.0),
        )
        model = set()

        def run():
            for op, key in ops:
                if op == "put":
                    yield store.put(key)
                    model.add(key)
                elif op == "get":
                    found = yield store.get(key)
                    assert found == (key in model), (op, key)
                else:
                    found = yield store.scan(key, 20)
                    expected = len(model & set(range(key, key + 20)))
                    assert found == expected, (op, key)
            # let background work settle, then verify every key again
            yield env.timeout(100_000_000)
            for key in sorted(model):
                found = yield store.get(key)
                assert found is True, key
            missing = yield store.get(10_000)
            assert missing is False

        env.run(until=env.process(run()))

    def test_no_keys_lost_across_many_compactions(self):
        env, array = make_array()
        fs = BlobFs(array, cluster_bytes=256 * KB)
        store = LsmKvStore(
            fs,
            LsmConfig(value_bytes=1024, memtable_bytes=16 * KB,
                      level0_compaction_trigger=2),
        )

        def run():
            for key in range(500):
                yield store.put(key % 120)  # heavy overwriting
            yield env.timeout(300_000_000)

        env.run(until=env.process(run()))
        assert store.stats["compactions"] >= 2
        everything = set(store._memtable)
        for immutable in store._immutable:
            everything |= immutable
        for level in store._levels:
            for sst in level:
                everything |= sst.keys
        assert everything == set(range(120))


class TestBlobFsModelBased:
    @given(
        appends=st.lists(
            st.tuples(st.integers(0, 2), st.integers(1, 40 * KB)),
            min_size=1,
            max_size=12,
        ),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_appends_match_shadow_bytes(self, appends, seed):
        env, array = make_array(functional=2048 * 16 * KB)
        fs = BlobFs(array, cluster_bytes=64 * KB, capacity=1024 * 16 * KB)
        rng = np.random.default_rng(seed)
        shadow = {}
        ids = {}

        def run():
            for name_index, nbytes in appends:
                name = f"blob{name_index}"
                if name not in ids:
                    ids[name] = yield fs.create_blob(name)
                    shadow[name] = np.zeros(0, dtype=np.uint8)
                payload = rng.integers(0, 256, nbytes, dtype=np.uint8)
                yield fs.append(ids[name], nbytes, data=payload)
                shadow[name] = np.concatenate([shadow[name], payload])
            for name, blob_id in ids.items():
                size = fs.blob_size(blob_id)
                assert size == len(shadow[name])
                data = yield fs.read(blob_id, 0, size)
                assert np.array_equal(data, shadow[name]), name
                # random sub-range
                if size > 2:
                    start = int(rng.integers(0, size - 1))
                    length = int(rng.integers(1, size - start))
                    part = yield fs.read(blob_id, start, length)
                    assert np.array_equal(part, shadow[name][start : start + length])

        env.run(until=env.process(run()))
