"""Event-arena aliasing properties (PR 6 satellite).

The kernel recycles dead events (timers, uncontended grants, resource
waiters) through per-class free lists.  The safety argument is a refcount
guard: an event enters a free list only when the kernel holds the sole
reference.  These hypothesis tests drive arbitrary interleavings of
request/grant/cancel through stores and capacity resources and assert the
two properties the argument rests on:

* **no aliasing** — no pooled event is simultaneously queued on a
  resource, parked as a process's wait target, scheduled in the calendar,
  or held as the deferred timer;
* **recycle exactly once** — a free list never contains the same object
  twice (a double recycle would hand one instance to two consumers).

Plus end-to-end conservation: no store item is lost or double-delivered
and no capacity slot leaks, no matter where cancels land.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Interrupt
from repro.sim.resources import CapacityResource, Store, _CapacityRequest


def _assert_arena_invariants(env, live_events):
    """No pooled event is alive anywhere; no event pooled twice."""
    pooled = []
    for pool in (env._timeout_pool, env._event_pool):
        pooled.extend(pool)
    for pool in env._waiter_pool.values():
        pooled.extend(pool)
    pooled_ids = [id(e) for e in pooled]
    assert len(pooled_ids) == len(set(pooled_ids)), "event recycled twice"
    pooled_set = set(pooled_ids)

    live = list(live_events)
    live.extend(e for _, _, e in env._queue)
    live.extend(e for _, e in env._nowq)
    if env._deferred is not None:
        live.append(env._deferred)
    overlap = pooled_set & {id(e) for e in live}
    assert not overlap, f"{len(overlap)} pooled event(s) still live"


_OPS = st.lists(
    st.sampled_from(["spawn", "feed", "cancel", "advance"]),
    min_size=4,
    max_size=50,
)


class TestStoreGetCancel:
    @given(ops=_OPS, picks=st.data())
    @settings(max_examples=60, deadline=None)
    def test_interleaved_get_cancel_never_aliases_or_loses_items(
        self, ops, picks
    ):
        env = Environment()
        store = Store(env, name="arena")
        received = []
        cancelled = []
        procs = []
        next_token = 0

        def getter(idx):
            try:
                item = yield store.get()
            except Interrupt:
                cancelled.append(idx)
                return
            received.append(item)

        def live_events():
            events = list(store._getters)
            events.extend(p._target for p in procs if p._target is not None)
            return events

        for op in ops:
            if op == "spawn":
                procs.append(env.process(getter(len(procs)), name="getter"))
            elif op == "feed":
                store.put(next_token)
                next_token += 1
            elif op == "cancel":
                waiting = [p for p in procs if p.is_alive and p._target is not None]
                if waiting:
                    idx = picks.draw(
                        st.integers(0, len(waiting) - 1), label="victim"
                    )
                    waiting[idx].interrupt("cancel")
            else:  # advance: park spawned processes, deliver grants
                env.run(until=env.now + 1)
            _assert_arena_invariants(env, live_events())

        # Drain: one item per still-live process, then run to quiescence.
        env.run(until=env.now + 1)
        for p in procs:
            if p.is_alive:
                store.put(next_token)
                next_token += 1
        env.run()
        _assert_arena_invariants(env, live_events())

        assert all(not p.is_alive for p in procs)
        # Conservation: every token was delivered at most once, and every
        # token is either delivered or still in the store (cancel hands a
        # granted-but-unconsumed item back, so nothing is lost).
        assert len(received) == len(set(received))
        assert sorted(received + list(store._items)) == list(range(next_token))


class TestCapacityRequestCancel:
    @given(
        capacity=st.integers(1, 3),
        ops=_OPS,
        picks=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_interleaved_request_cancel_never_aliases_or_leaks_slots(
        self, capacity, ops, picks
    ):
        env = Environment()
        res = CapacityResource(env, capacity=capacity, name="arena")
        served = []
        procs = []

        def holder(idx, hold_ns):
            try:
                yield res.request()
            except Interrupt:
                return
            served.append(idx)
            yield env.timeout(hold_ns)
            res.release()

        def live_events():
            events = list(res._waiters)
            events.extend(p._target for p in procs if p._target is not None)
            return events

        for op in ops:
            if op == "spawn":
                hold = picks.draw(st.integers(1, 20), label="hold_ns")
                procs.append(
                    env.process(holder(len(procs), hold), name="holder")
                )
            elif op == "feed":
                env.run(until=env.now + 5)  # let holders release
            elif op == "cancel":
                # Only cancel processes parked on the request itself —
                # covers both the still-queued and the granted-but-not-
                # resumed abandon paths.
                waiting = [
                    p
                    for p in procs
                    if p.is_alive and isinstance(p._target, _CapacityRequest)
                ]
                if waiting:
                    idx = picks.draw(
                        st.integers(0, len(waiting) - 1), label="victim"
                    )
                    waiting[idx].interrupt("cancel")
            else:  # advance
                env.run(until=env.now + 1)
            assert 0 <= res._in_use <= capacity
            _assert_arena_invariants(env, live_events())

        env.run()
        _assert_arena_invariants(env, live_events())
        assert all(not p.is_alive for p in procs)
        # No slot leaked: every grant was eventually released, including
        # slots granted to waiters that were cancelled before resuming.
        assert res._in_use == 0
        assert len(served) == len(set(served))
