"""Whole-array functional correctness of the baseline controllers.

Every test runs real bytes through the full simulated stack (host ->
NVMe-oF -> drives) and checks reads against a shadow model plus on-disk
parity consistency by scrubbing.
"""

import numpy as np
import pytest

from repro.baselines import MdRaid, SpdkRaid
from repro.raid.geometry import RaidLevel
from tests.raid_harness import ArrayHarness, TEST_CHUNK

CONTROLLERS = [SpdkRaid, MdRaid]
LEVELS = [RaidLevel.RAID5, RaidLevel.RAID6]


@pytest.fixture(params=CONTROLLERS, ids=lambda c: c.__name__)
def controller_cls(request):
    return request.param


@pytest.fixture(params=LEVELS, ids=lambda l: l.name)
def level(request):
    return request.param


class TestNormalState:
    def test_write_read_roundtrip_small(self, controller_cls, level):
        h = ArrayHarness(controller_cls, level=level)
        payload = bytes(range(256)) * 16  # 4 KiB
        h.write(0, payload)
        h.check_read(0, len(payload))
        h.scrub()

    def test_full_stripe_write(self, controller_cls, level):
        h = ArrayHarness(controller_cls, level=level)
        size = h.geometry.stripe_data_bytes
        rng = np.random.default_rng(1)
        h.write(0, rng.integers(0, 256, size, dtype=np.uint8))
        h.check_read(0, size)
        h.scrub()
        assert h.array.stats.full_stripe_writes == 1

    def test_rmw_write_updates_parity(self, controller_cls, level):
        h = ArrayHarness(controller_cls, level=level)
        rng = np.random.default_rng(2)
        # prime two stripes, then overwrite a small region (forces RMW)
        h.write(0, rng.integers(0, 256, 2 * h.geometry.stripe_data_bytes, dtype=np.uint8))
        h.write(TEST_CHUNK // 2, rng.integers(0, 256, 4096, dtype=np.uint8))
        h.check_read(0, 2 * h.geometry.stripe_data_bytes)
        h.scrub()
        assert h.array.stats.rmw_writes >= 1

    def test_rcw_write(self, controller_cls, level):
        h = ArrayHarness(controller_cls, level=level)
        rng = np.random.default_rng(3)
        h.write(0, rng.integers(0, 256, h.geometry.stripe_data_bytes, dtype=np.uint8))
        # overwrite most of the stripe -> reconstruct write
        size = h.geometry.stripe_data_bytes - TEST_CHUNK
        h.write(0, rng.integers(0, 256, size, dtype=np.uint8))
        h.check_read(0, h.geometry.stripe_data_bytes)
        h.scrub()
        assert h.array.stats.rcw_writes >= 1

    def test_unaligned_cross_stripe_write(self, controller_cls, level):
        h = ArrayHarness(controller_cls, level=level)
        rng = np.random.default_rng(4)
        offset = h.geometry.stripe_data_bytes - 5000
        size = 2 * h.geometry.stripe_data_bytes + 7777
        h.write(offset, rng.integers(0, 256, size, dtype=np.uint8))
        h.check_read(0, 4 * h.geometry.stripe_data_bytes)
        h.scrub()

    def test_random_workload(self, controller_cls, level):
        h = ArrayHarness(controller_cls, level=level)
        h.random_workload(seed=42, ops=30)
        h.scrub()


class TestDegradedState:
    def test_degraded_read_every_drive(self, controller_cls, level):
        rng = np.random.default_rng(5)
        for failed in range(5):
            h = ArrayHarness(controller_cls, level=level)
            blob = rng.integers(0, 256, 4 * h.geometry.stripe_data_bytes, dtype=np.uint8)
            h.write(0, blob)
            h.array.fail_drive(failed)
            h.check_read(0, len(blob))

    def test_degraded_write_touching_failed_chunk(self, controller_cls, level):
        h = ArrayHarness(controller_cls, level=level)
        rng = np.random.default_rng(6)
        h.write(0, rng.integers(0, 256, 2 * h.geometry.stripe_data_bytes, dtype=np.uint8))
        # fail the drive holding data chunk 0 of stripe 0, then write to it
        failed = h.geometry.data_drive(0, 0)
        h.array.fail_drive(failed)
        h.write(0, rng.integers(0, 256, TEST_CHUNK, dtype=np.uint8))  # full chunk
        h.check_read(0, 2 * h.geometry.stripe_data_bytes)

    def test_degraded_write_partially_covering_failed_chunk(self, controller_cls, level):
        h = ArrayHarness(controller_cls, level=level)
        rng = np.random.default_rng(7)
        h.write(0, rng.integers(0, 256, 2 * h.geometry.stripe_data_bytes, dtype=np.uint8))
        failed = h.geometry.data_drive(0, 1)
        h.array.fail_drive(failed)
        # partial overwrite of the failed chunk: old content must be
        # reconstructed and folded into the new parity
        offset = TEST_CHUNK + 1000
        h.write(offset, rng.integers(0, 256, 2000, dtype=np.uint8))
        h.check_read(0, 2 * h.geometry.stripe_data_bytes)

    def test_degraded_write_failed_parity_drive(self, controller_cls, level):
        h = ArrayHarness(controller_cls, level=level)
        rng = np.random.default_rng(8)
        h.write(0, rng.integers(0, 256, h.geometry.stripe_data_bytes, dtype=np.uint8))
        h.array.fail_drive(h.geometry.parity_drives(0)[0])
        h.write(0, rng.integers(0, 256, 4096, dtype=np.uint8))
        h.check_read(0, h.geometry.stripe_data_bytes)

    def test_degraded_random_workload(self, controller_cls, level):
        h = ArrayHarness(controller_cls, level=level)
        h.random_workload(seed=9, ops=15)
        h.array.fail_drive(2)
        h.random_workload(seed=10, ops=15)

    def test_raid6_double_failure_reads(self, controller_cls):
        h = ArrayHarness(controller_cls, level=RaidLevel.RAID6, drives=6)
        rng = np.random.default_rng(11)
        blob = rng.integers(0, 256, 4 * h.geometry.stripe_data_bytes, dtype=np.uint8)
        h.write(0, blob)
        h.array.fail_drive(0)
        h.array.fail_drive(3)
        h.check_read(0, len(blob))

    def test_too_many_failures_rejected(self, controller_cls, level):
        from repro.baselines.base import ArrayFailureError

        h = ArrayHarness(controller_cls, level=level)
        allowed = h.geometry.num_parity
        for i in range(allowed):
            h.array.fail_drive(i)
        with pytest.raises(ArrayFailureError):
            h.array.fail_drive(allowed)


class TestStats:
    def test_mode_counters(self, controller_cls):
        h = ArrayHarness(controller_cls)
        rng = np.random.default_rng(12)
        h.write(0, rng.integers(0, 256, h.geometry.stripe_data_bytes, dtype=np.uint8))
        h.write(0, rng.integers(0, 256, 4096, dtype=np.uint8))
        h.read(0, 4096)
        s = h.array.stats
        assert s.full_stripe_writes == 1
        assert s.rmw_writes == 1
        assert s.reads == 1

    def test_write_requires_data_in_functional_mode(self, controller_cls):
        h = ArrayHarness(controller_cls)
        with pytest.raises(ValueError):
            h.array.write(0, 4096)

    def test_data_length_validated(self, controller_cls):
        h = ArrayHarness(controller_cls)
        with pytest.raises(ValueError):
            h.array.write(0, 4096, b"short")
