"""Tests for the write-intent bitmap and post-crash resync (§5.4)."""

import numpy as np
import pytest

from repro.draid import DraidArray
from repro.baselines import SpdkRaid
from repro.raid.bitmap import WriteIntentBitmap
from repro.raid.resync import resync_after_crash, resync_stripes
from repro.raid.scrub import scrub_array
from tests.raid_harness import ArrayHarness, TEST_CHUNK


class TestBitmap:
    def test_mark_clear_cycle(self):
        bm = WriteIntentBitmap()
        bm.mark(3)
        assert bm.is_dirty(3)
        assert bm.dirty_stripes() == [3]
        bm.clear(3)
        assert not bm.is_dirty(3)
        assert len(bm) == 0

    def test_refcounting_multiple_writers(self):
        bm = WriteIntentBitmap()
        bm.mark(5)
        bm.mark(5)
        bm.clear(5)
        assert bm.is_dirty(5)  # one writer still in flight
        bm.clear(5)
        assert not bm.is_dirty(5)

    def test_clear_unmarked_raises(self):
        with pytest.raises(KeyError):
            WriteIntentBitmap().clear(1)

    def test_dirty_stripes_sorted(self):
        bm = WriteIntentBitmap()
        for stripe in (9, 2, 7):
            bm.mark(stripe)
        assert bm.dirty_stripes() == [2, 7, 9]

    def test_total_marks_counter(self):
        bm = WriteIntentBitmap()
        bm.mark(1)
        bm.mark(2)
        assert bm.total_marks == 2


@pytest.mark.parametrize("controller_cls", [SpdkRaid, DraidArray],
                         ids=lambda c: c.__name__)
class TestBitmapIntegration:
    def test_bitmap_clean_after_completed_writes(self, controller_cls):
        h = ArrayHarness(controller_cls)
        rng = np.random.default_rng(1)
        h.write(0, rng.integers(0, 256, 3 * h.geometry.stripe_data_bytes, dtype=np.uint8))
        assert h.array.bitmap.dirty_stripes() == []
        assert h.array.bitmap.total_marks >= 3

    def test_bitmap_dirty_mid_write(self, controller_cls):
        h = ArrayHarness(controller_cls)
        rng = np.random.default_rng(2)
        payload = rng.integers(0, 256, 8192, dtype=np.uint8)
        event = h.array.write(0, len(payload), payload)
        # advance a little: the write is in flight, stripe 0 is marked
        h.env.run(until=h.env.now + 10_000)
        assert h.array.bitmap.is_dirty(0)
        h.env.run(until=event)
        assert not h.array.bitmap.is_dirty(0)


@pytest.mark.parametrize("controller_cls", [SpdkRaid, DraidArray],
                         ids=lambda c: c.__name__)
class TestResync:
    def _torn_stripe(self, h, stripe, rng):
        """Simulate a crash torn write: data updated behind the array's
        back (parity now stale)."""
        geometry = h.geometry
        drive = geometry.data_drive(stripe, 0)
        offset = stripe * geometry.chunk_bytes
        torn = rng.integers(0, 256, geometry.chunk_bytes, dtype=np.uint8)
        h.env.run(until=h.cluster.drives()[drive].write(offset, len(torn), torn))
        # reflect the new data in the shadow model (the data *did* land)
        user = stripe * geometry.stripe_data_bytes
        h.model[user : user + geometry.chunk_bytes] = torn

    def test_resync_repairs_torn_write(self, controller_cls):
        h = ArrayHarness(controller_cls)
        rng = np.random.default_rng(3)
        h.write(0, rng.integers(0, 256, 4 * h.geometry.stripe_data_bytes, dtype=np.uint8))
        self._torn_stripe(h, 1, rng)
        from repro.raid.scrub import scrub_array as scrub
        assert scrub(h.cluster.drives(), h.geometry, 4).bad_stripes == [1]  # parity stale
        count = h.env.run(until=resync_stripes(h.array, [1]))
        assert count == 1
        h.scrub()  # parity consistent again
        h.check_read(0, 4 * h.geometry.stripe_data_bytes)

    def test_resync_after_crash_uses_bitmap(self, controller_cls):
        h = ArrayHarness(controller_cls)
        rng = np.random.default_rng(4)
        h.write(0, rng.integers(0, 256, 4 * h.geometry.stripe_data_bytes, dtype=np.uint8))
        # crash scenario: stripes 0 and 2 had in-flight writes
        self._torn_stripe(h, 0, rng)
        self._torn_stripe(h, 2, rng)
        bitmap = WriteIntentBitmap()
        bitmap.mark(0)
        bitmap.mark(2)
        count = h.env.run(until=resync_after_crash(h.array, bitmap))
        assert count == 2
        h.scrub()
        h.check_read(0, 4 * h.geometry.stripe_data_bytes)

    def test_resync_noop_on_clean_bitmap(self, controller_cls):
        h = ArrayHarness(controller_cls)
        rng = np.random.default_rng(5)
        h.write(0, rng.integers(0, 256, h.geometry.stripe_data_bytes, dtype=np.uint8))
        count = h.env.run(until=resync_after_crash(h.array, WriteIntentBitmap()))
        assert count == 0


@pytest.mark.parametrize("controller_cls", [SpdkRaid, DraidArray],
                         ids=lambda c: c.__name__)
class TestCrashResync:
    """§5.4: a server crash mid-write loses in-flight state; the bitmap
    names the suspect stripes and resync repairs them after recovery."""

    def test_mid_write_server_crash_resyncs_clean(self, controller_cls):
        from repro.faults import FaultInjector, FaultPlan
        from repro.nvmeof.messages import IoError
        from repro.raid.rebuild import RebuildJob

        h = ArrayHarness(controller_cls)
        # arm the resilient datapath; no scheduled faults — the crash is
        # injected by hand mid-flight below
        FaultInjector(h.array, FaultPlan([]), num_stripes=h.stripes)
        h.array.timeout_ns = 500_000
        h.array.max_retries = 0  # first failure is terminal: stripe stays torn
        rng = np.random.default_rng(6)
        h.write(0, rng.integers(0, 256, h.capacity, dtype=np.uint8))

        victim = h.geometry.data_drive(0, 0)
        payload = rng.integers(0, 256, 2 * h.geometry.stripe_data_bytes,
                               dtype=np.uint8)
        event = h.array.write(0, len(payload), payload)
        # advance just until the write has marked its stripes: it is in
        # flight but its commands have not all been served yet
        while not h.array.bitmap.dirty_stripes():
            h.env.run(until=h.env.now + 1_000)
        dirty = h.array.bitmap.dirty_stripes()
        # crash the server under the write: its inbox and any partial
        # parity state are lost; it restarts 10 ms later
        sides = getattr(h.array, "bdev_servers", None) or h.array.targets
        sides[victim].crash(10_000_000)
        with pytest.raises(IoError):
            h.env.run(until=event)
        h.env.run(until=h.env.now + 15_000_000)  # server back up

        # recovery: rebuild the fenced member, then resync the dirty set
        for member in sorted(h.array.failed):
            h.env.run(until=RebuildJob(h.array, member, h.stripes).start())
        assert not h.array.failed
        count = h.env.run(until=resync_stripes(h.array, dirty))
        assert count == len(dirty)
        h.scrub()  # parity consistent, torn stripes included
        # bytes outside the aborted write are untouched
        start = 2 * h.geometry.stripe_data_bytes
        h.check_read(start, h.capacity - start)
