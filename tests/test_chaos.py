"""Chaos harness tests: randomized seeded fault schedules (§5.4).

27 schedules (9 seeds x 3 controllers) each run a paced workload through
a seeded fault storm, then recover (heal + rebuild + resync) and verify:
every surviving byte bit-exact against the shadow model, parity scrub
clean, no hangs.  A determinism gate re-runs schedules through the
parallel sweep executor and requires byte-identical outcomes.
"""

import pytest

from repro.experiments.runner import SweepPoint, run_points
from repro.faults.chaos import CHAOS_SYSTEMS, run_chaos_schedule

CHAOS_SEEDS = range(1, 10)  # 9 seeds x 3 systems = 27 schedules


@pytest.mark.parametrize("system", CHAOS_SYSTEMS)
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_schedule_survives(system, seed):
    outcome = run_chaos_schedule(system, seed)
    assert outcome.verified, (
        f"{system} seed {seed}: data diverged from model\n{outcome.row()}"
    )
    assert outcome.scrub_clean, (
        f"{system} seed {seed}: parity scrub dirty\n{outcome.row()}"
    )
    assert outcome.applied == outcome.plan_events


def test_chaos_schedule_replay_identical():
    a = run_chaos_schedule("draid", 3)
    b = run_chaos_schedule("draid", 3)
    assert a == b


class TestDeterminismGuard:
    """Identical FaultPlan, serial vs parallel sweep: byte-identical rows."""

    POINTS = [
        SweepPoint(run_chaos_schedule, dict(system=system, seed=seed))
        for system in CHAOS_SYSTEMS
        for seed in (2, 5)
    ]

    def test_serial_matches_parallel(self):
        serial = run_points(self.POINTS, jobs=1)
        parallel = run_points(self.POINTS, jobs=2)
        assert serial == parallel
        assert [o.row() for o in serial] == [o.row() for o in parallel]
        assert [o.fault_summary for o in serial] == [
            o.fault_summary for o in parallel
        ]


def _load_smoke_module(script_name):
    import importlib.util
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    spec = importlib.util.spec_from_file_location(
        script_name, root / "scripts" / f"{script_name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module, root / "tests" / "golden" / f"{script_name}.golden"


def test_smoke_grid_matches_committed_golden():
    """The CI golden must track the datapath: regenerate it with
    ``python scripts/chaos_smoke.py --write-golden`` on deliberate change."""
    module, golden = _load_smoke_module("chaos_smoke")
    assert module.smoke_report() == golden.read_text()


class TestCorruptionStorms:
    """Chaos schedules with silent-corruption events mixed in: the full
    recovery playbook must end with zero residual corruption, a clean
    scrub and byte-exact shadow data."""

    @pytest.mark.parametrize("system", CHAOS_SYSTEMS)
    def test_corruption_storm_recovers(self, system):
        outcome = run_chaos_schedule(system, 7, corruption_events=4)
        assert outcome.corruption_events > 0
        # armed events only fire if a write hits the drive and detection
        # episodes dedupe per chunk, so detected can trail the injected
        # count — but a storm of 4 must surface at least one episode
        # episodes dedupe per chunk and a detection can end in adoption
        # rather than repair (beyond-parity loss on a torn stripe)
        assert outcome.detected > 0, outcome.integrity_row()
        assert outcome.repaired > 0, outcome.integrity_row()
        assert outcome.unrecoverable == 0, outcome.integrity_row()
        assert outcome.ok, outcome.integrity_row()

    def test_scrub_daemon_during_storm(self):
        outcome = run_chaos_schedule(
            "spdk", 8, corruption_events=3, scrub_pace_ns=500_000
        )
        assert outcome.ok, outcome.integrity_row()
        assert outcome.unrecoverable == 0

    def test_corruption_storm_replay_identical(self):
        a = run_chaos_schedule("md", 9, corruption_events=4)
        b = run_chaos_schedule("md", 9, corruption_events=4)
        assert a == b

    def test_serial_matches_parallel(self):
        points = [
            SweepPoint(
                run_chaos_schedule,
                dict(system=system, seed=6, corruption_events=4),
            )
            for system in CHAOS_SYSTEMS
        ]
        serial = run_points(points, jobs=1)
        parallel = run_points(points, jobs=2)
        assert serial == parallel
        assert [o.integrity_row() for o in serial] == [
            o.integrity_row() for o in parallel
        ]


def test_integrity_smoke_matches_committed_golden():
    """Armed-path golden: regenerate with
    ``python scripts/integrity_smoke.py --write-golden`` on deliberate
    change."""
    module, golden = _load_smoke_module("integrity_smoke")
    assert module.smoke_report() == golden.read_text()


class TestFailSlowRecovery:
    """Acceptance: a 10x fail-slow member is ejected by the EWMA detector
    and read p99 recovers to within 2x of the healthy baseline."""

    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments.reliability import failslow_point

        return {
            mode: failslow_point(mode)
            for mode in ("baseline", "failslow", "detected")
        }

    def test_failslow_hurts_tail_latency(self, rows):
        assert (
            rows["failslow"].metrics["p99_latency_us"]
            > 3 * rows["baseline"].metrics["p99_latency_us"]
        )

    def test_detector_ejects_and_p99_recovers(self, rows):
        assert rows["detected"].metrics["fail_slow_ejections"] >= 1
        assert (
            rows["detected"].metrics["p99_latency_us"]
            <= 2 * rows["baseline"].metrics["p99_latency_us"]
        )
