"""Chaos harness tests: randomized seeded fault schedules (§5.4).

27 schedules (9 seeds x 3 controllers) each run a paced workload through
a seeded fault storm, then recover (heal + rebuild + resync) and verify:
every surviving byte bit-exact against the shadow model, parity scrub
clean, no hangs.  A determinism gate re-runs schedules through the
parallel sweep executor and requires byte-identical outcomes.
"""

import pytest

from repro.experiments.runner import SweepPoint, run_points
from repro.faults.chaos import CHAOS_SYSTEMS, run_chaos_schedule

CHAOS_SEEDS = range(1, 10)  # 9 seeds x 3 systems = 27 schedules


@pytest.mark.parametrize("system", CHAOS_SYSTEMS)
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_schedule_survives(system, seed):
    outcome = run_chaos_schedule(system, seed)
    assert outcome.verified, (
        f"{system} seed {seed}: data diverged from model\n{outcome.row()}"
    )
    assert outcome.scrub_clean, (
        f"{system} seed {seed}: parity scrub dirty\n{outcome.row()}"
    )
    assert outcome.applied == outcome.plan_events


def test_chaos_schedule_replay_identical():
    a = run_chaos_schedule("draid", 3)
    b = run_chaos_schedule("draid", 3)
    assert a == b


class TestDeterminismGuard:
    """Identical FaultPlan, serial vs parallel sweep: byte-identical rows."""

    POINTS = [
        SweepPoint(run_chaos_schedule, dict(system=system, seed=seed))
        for system in CHAOS_SYSTEMS
        for seed in (2, 5)
    ]

    def test_serial_matches_parallel(self):
        serial = run_points(self.POINTS, jobs=1)
        parallel = run_points(self.POINTS, jobs=2)
        assert serial == parallel
        assert [o.row() for o in serial] == [o.row() for o in parallel]
        assert [o.fault_summary for o in serial] == [
            o.fault_summary for o in parallel
        ]


def test_smoke_grid_matches_committed_golden():
    """The CI golden must track the datapath: regenerate it with
    ``python scripts/chaos_smoke.py --write-golden`` on deliberate change."""
    import importlib.util
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    spec = importlib.util.spec_from_file_location(
        "chaos_smoke", root / "scripts" / "chaos_smoke.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    golden = (root / "tests" / "golden" / "chaos_smoke.golden").read_text()
    assert module.smoke_report() == golden


class TestFailSlowRecovery:
    """Acceptance: a 10x fail-slow member is ejected by the EWMA detector
    and read p99 recovers to within 2x of the healthy baseline."""

    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments.reliability import failslow_point

        return {
            mode: failslow_point(mode)
            for mode in ("baseline", "failslow", "detected")
        }

    def test_failslow_hurts_tail_latency(self, rows):
        assert (
            rows["failslow"].metrics["p99_latency_us"]
            > 3 * rows["baseline"].metrics["p99_latency_us"]
        )

    def test_detector_ejects_and_p99_recovers(self, rows):
        assert rows["detected"].metrics["fail_slow_ejections"] >= 1
        assert (
            rows["detected"].metrics["p99_latency_us"]
            <= 2 * rows["baseline"].metrics["p99_latency_us"]
        )
