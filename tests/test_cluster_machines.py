"""Tests for machines, CPU cores and array scrubbing utilities."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, CpuCore, build_cluster
from repro.cluster.machines import HostMachine, Machine, StorageServer
from repro.cluster.profiles import CpuProfile
from repro.net import Nic
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.raid.scrub import scrub_array, scrub_stripe
from repro.sim import Environment
from repro.storage import DELL_AGN_MU, NvmeDrive


class TestCpuCore:
    def test_work_serializes_fifo(self):
        env = Environment()
        core = CpuCore(env)
        done = []

        def proc(tag, work):
            yield core.execute(work)
            done.append((tag, env.now))

        env.process(proc("a", 100))
        env.process(proc("b", 50))
        env.run()
        assert done == [("a", 100), ("b", 150)]

    def test_zero_work_completes_immediately(self):
        env = Environment()
        core = CpuCore(env)

        def proc():
            yield core.execute(0)
            return env.now

        assert env.run(until=env.process(proc())) == 0

    def test_negative_work_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            CpuCore(env).execute(-1)

    def test_utilization_accounting(self):
        env = Environment()
        core = CpuCore(env)

        def proc():
            yield core.execute(500)

        env.run(until=env.process(proc()))
        assert core.busy_ns == 500
        assert core.utilization(1000) == pytest.approx(0.5)
        core.reset_accounting()
        assert core.busy_ns == 0


class TestMachines:
    def test_pick_core_round_robin(self):
        env = Environment()
        machine = Machine(env, "m", [Nic(env)], num_cores=3)
        picks = [machine.pick_core() for _ in range(6)]
        assert picks[0] is picks[3]
        assert len({id(c) for c in picks}) == 3

    def test_least_used_nic(self):
        env = Environment()
        nics = [Nic(env, name=f"n{i}") for i in range(2)]
        machine = Machine(env, "m", nics)
        nics[0].tx.reserve(1_000_000)
        assert machine.least_used_nic() is nics[1]

    def test_machine_requires_nic(self):
        env = Environment()
        with pytest.raises(ValueError):
            Machine(env, "m", [])

    def test_storage_server_requires_drive(self):
        env = Environment()
        with pytest.raises(ValueError):
            StorageServer(env, "s", [Nic(env)], drives=[])

    def test_cpu_profile_costs(self):
        profile = CpuProfile(xor_bytes_per_s=1e9, gf_bytes_per_s=5e8)
        assert profile.xor_ns(1_000_000) == 1_000_000
        assert profile.gf_ns(1_000_000) == 2_000_000

    def test_cluster_reset_accounting(self):
        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=2))
        cluster.servers[0].nic.tx.reserve(100)
        cluster.host.nic.rx.reserve(100)
        cluster.reset_accounting()
        assert cluster.servers[0].nic.tx_bytes == 0
        assert cluster.host.nic.rx_bytes == 0


class TestScrub:
    def make_consistent_array(self):
        from repro.draid import DraidArray

        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=5, functional_capacity=8 * 16384))
        geometry = RaidGeometry(RaidLevel.RAID5, 5, 16384)
        array = DraidArray(cluster, geometry)
        rng = np.random.default_rng(0)
        blob = rng.integers(0, 256, 4 * geometry.stripe_data_bytes, dtype=np.uint8)
        env.run(until=array.write(0, len(blob), blob))
        return env, cluster, geometry

    def test_clean_array_scrubs_clean(self):
        env, cluster, geometry = self.make_consistent_array()
        report = scrub_array(cluster.drives(), geometry, 4)
        assert report.clean and report.stripes_checked == 4

    def test_corruption_detected_per_stripe(self):
        env, cluster, geometry = self.make_consistent_array()
        # flip a byte on stripe 2's chunk of drive 0
        drive = cluster.drives()[0]
        offset = 2 * geometry.chunk_bytes
        drive._data[offset] ^= 0xFF
        assert scrub_array(cluster.drives(), geometry, 4).bad_stripes == [2]
        assert not scrub_stripe(cluster.drives(), geometry, 2)
        assert scrub_stripe(cluster.drives(), geometry, 1)

    def test_raid6_scrub_checks_both_parities(self):
        from repro.draid import DraidArray

        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=6, functional_capacity=8 * 16384))
        geometry = RaidGeometry(RaidLevel.RAID6, 6, 16384)
        array = DraidArray(cluster, geometry)
        rng = np.random.default_rng(1)
        blob = rng.integers(0, 256, 2 * geometry.stripe_data_bytes, dtype=np.uint8)
        env.run(until=array.write(0, len(blob), blob))
        assert scrub_array(cluster.drives(), geometry, 2).clean
        # corrupt Q of stripe 0
        q_drive = geometry.parity_drives(0)[1]
        cluster.drives()[q_drive]._data[0] ^= 1
        assert scrub_array(cluster.drives(), geometry, 2).bad_stripes == [0]


class TestMultiNic:
    def test_connections_balanced_across_nics(self):
        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=6, nics_per_server=2))
        # each server: 1 host conn + 5 peer conns = 6 connections over 2 NICs
        from repro.net.fabric import RdmaConnection

        for i, server in enumerate(cluster.servers):
            counts = {id(nic): 0 for nic in server.nics}
            conns = [cluster.host_connection(i)] + [
                cluster.peer_connection(i, j) for j in range(6) if j != i
            ]
            for conn in conns:
                for end in (conn.a, conn.b):
                    if end.nic in server.nics:
                        counts[id(end.nic)] += 1
            assert sorted(counts.values()) == [3, 3]

    def test_end_helpers_resolve_ownership(self):
        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=3, nics_per_server=2))
        for i in range(3):
            assert cluster.host_end(i).nic in cluster.host.nics
            assert cluster.server_end(i).nic in cluster.servers[i].nics
        assert cluster.peer_end(0, 1).nic in cluster.servers[0].nics
        assert cluster.peer_end(1, 0).nic in cluster.servers[1].nics

    def test_draid_works_over_multi_nic_servers(self):
        import numpy as np

        from repro.draid import DraidArray
        from repro.raid.geometry import RaidGeometry, RaidLevel

        env = Environment()
        cluster = build_cluster(
            env,
            ClusterConfig(num_servers=5, nics_per_server=2,
                          functional_capacity=16 * 16384),
        )
        array = DraidArray(cluster, RaidGeometry(RaidLevel.RAID5, 5, 16384))
        rng = np.random.default_rng(0)
        blob = rng.integers(0, 256, 2 * array.geometry.stripe_data_bytes, dtype=np.uint8)
        env.run(until=array.write(0, len(blob), blob))
        data = env.run(until=array.read(0, len(blob)))
        assert np.array_equal(data, blob)

    def test_invalid_nic_count(self):
        env = Environment()
        import pytest as _pytest

        with _pytest.raises(ValueError):
            build_cluster(env, ClusterConfig(num_servers=2, nics_per_server=0))
