"""Cross-controller equivalence: every RAID implementation in this
repository must expose byte-identical block-device semantics.

Property: for any randomized operation sequence, all controllers (Linux-MD
model, SPDK-POC model, dRAID, log-structured, RS-generalized dRAID,
offloaded dRAID) end with the same user-visible data — each checked
against the same shadow model, including after a drive failure.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import LogStructuredRaid, MdRaid, SpdkRaid
from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray, EcDraidArray, EcGeometry
from repro.draid.offload import OffloadedDraidArray
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment

KB = 1024
CHUNK = 16 * KB
STRIPES = 10
DRIVES = 5


def build_controller(kind: str):
    env = Environment()
    if kind == "offloaded":
        cluster = build_cluster(
            env,
            ClusterConfig(num_servers=DRIVES + 1, functional_capacity=STRIPES * CHUNK),
        )
        geometry = RaidGeometry(RaidLevel.RAID5, DRIVES, CHUNK)
        return env, OffloadedDraidArray(cluster, geometry), geometry
    cluster = build_cluster(
        env, ClusterConfig(num_servers=DRIVES, functional_capacity=STRIPES * CHUNK)
    )
    if kind == "ec":
        geometry = EcGeometry(DRIVES, CHUNK, num_parity=2)
        return env, EcDraidArray(cluster, geometry), geometry
    geometry = RaidGeometry(RaidLevel.RAID5, DRIVES, CHUNK)
    cls = {
        "md": MdRaid,
        "spdk": SpdkRaid,
        "draid": DraidArray,
        "log": LogStructuredRaid,
    }[kind]
    return env, cls(cluster, geometry), geometry


CONTROLLERS = ["md", "spdk", "draid", "log", "ec", "offloaded"]


def apply_ops(kind: str, ops, fail_at: int):
    """Run the op sequence; returns (final_device_image, model_image)."""
    env, array, geometry = build_controller(kind)
    capacity = STRIPES * geometry.stripe_data_bytes
    model = np.zeros(capacity, dtype=np.uint8)
    rng = np.random.default_rng(999)
    for index, (offset_frac, size_frac) in enumerate(ops):
        if index == fail_at:
            array.fail_drive(1)
        size = 1 + int(size_frac * (geometry.stripe_data_bytes * 2 - 1))
        offset = int(offset_frac * (capacity - size))
        payload = rng.integers(0, 256, size, dtype=np.uint8)
        env.run(until=array.write(offset, size, payload))
        model[offset : offset + size] = payload
    data = env.run(until=array.read(0, capacity))
    return np.asarray(data), model


op_lists = st.lists(
    st.tuples(st.floats(0, 1), st.floats(0, 1)),
    min_size=1,
    max_size=6,
)


@pytest.mark.parametrize("kind", CONTROLLERS)
@given(ops=op_lists, fail_at=st.integers(-1, 5))
@settings(max_examples=8, deadline=None)
def test_controller_matches_model(kind, ops, fail_at):
    if kind == "log" and fail_at >= 0:
        # the log-structured baseline models §2.3's write path; its
        # degraded-mode flushes reuse the shared full-stripe machinery and
        # are covered by its own suite without mid-sequence failures
        fail_at = -1
    data, model = apply_ops(kind, ops, fail_at)
    assert np.array_equal(data, model)


def test_all_controllers_agree_on_one_sequence():
    """One fixed mixed sequence: every implementation returns the same bytes."""
    ops = [(0.0, 0.9), (0.3, 0.2), (0.05, 0.02), (0.6, 0.5), (0.31, 0.01)]
    images = {}
    for kind in CONTROLLERS:
        data, model = apply_ops(kind, ops, fail_at=3)
        assert np.array_equal(data, model), kind
        images[kind] = data
    reference = images["draid"]
    for kind, image in images.items():
        if kind == "ec":
            # EcGeometry has 2 parities => different capacity, so offsets
            # resolve differently; its model check above is the guarantee
            continue
        assert np.array_equal(image, reference), f"{kind} diverged"
