"""Deadline x retry chaos: typed failures under faults, on every controller.

Satellite coverage for the overload subsystem's two hard promises under
fault storms, checked on all three controllers with the protocol checker
armed (``VerifyConfig`` — a §4 / NVMe-oF state-machine violation crashes
the sim, so a passing run *is* the protocol assertion):

* **no retry past the deadline** — once an I/O's absolute deadline budget
  is spent, the retry loop abandons it with a terminal typed
  :class:`~repro.qos.errors.DeadlineExceeded`; attempt timeouts are
  clamped to the remaining budget, so the op resolves within
  deadline + one (clamped) drain window, never retrying into the void;
* **retry-budget exhaustion is a terminal IoError** — with a dry budget
  the retry loop sheds the op instead of amplifying the storm, and the
  denial is visible in ``qos.stats.retries_denied``.
"""

import random

import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.faults.chaos import CHAOS_SYSTEMS, _make_controller
from repro.faults.events import DriveErrorBurst, DriveFailSlow, ServerCrash
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.nvmeof.messages import IoError
from repro.qos import Busy, DeadlineExceeded, OverloadConfig
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment
from repro.verify import VerifyConfig

KB = 1024
MS = 1_000_000

DRIVES = 5
CHUNK = 16 * KB
STRIPES = 12
TIMEOUT_NS = 2 * MS
DEADLINE_NS = 6 * MS

#: one representative fault per failure mode: erroring member, fail-slow
#: member (timeouts, not errors), crashed server (lost capsules)
FAULT_PLANS = {
    "error_burst": lambda horizon: [DriveErrorBurst(0, server=1, duration_ns=horizon)],
    "fail_slow": lambda horizon: [DriveFailSlow(0, server=1, multiplier=80.0)],
    "crash": lambda horizon: [ServerCrash(0, server=1, down_ns=horizon)],
}


def build_faulted_array(system, fault, overload):
    env = Environment()
    config = ClusterConfig(
        num_servers=DRIVES,
        functional_capacity=STRIPES * CHUNK,
        io_timeout_ns=TIMEOUT_NS,
        overload=overload,
        verify=VerifyConfig(),
    )
    cluster = build_cluster(env, config)
    geometry = RaidGeometry(RaidLevel.RAID5, DRIVES, CHUNK)
    array = _make_controller(system, cluster, geometry)
    plan = FaultPlan(FAULT_PLANS[fault](200 * MS))
    FaultInjector(array, plan, num_stripes=STRIPES)
    return env, array


@pytest.mark.parametrize("system", CHAOS_SYSTEMS)
@pytest.mark.parametrize("fault", sorted(FAULT_PLANS))
def test_no_retry_past_deadline(system, fault):
    """Every deadlined op resolves — success or typed error — within its
    budget plus one clamped attempt's drain window."""
    env, array = build_faulted_array(
        system,
        fault,
        OverloadConfig(default_deadline_ns=None, retry_deposit_ratio=0.5),
    )
    rng = random.Random(1234)
    stripe_bytes = array.geometry.stripe_data_bytes
    resolved = []

    def one(i):
        offset = (i % STRIPES) * stripe_bytes
        start = env.now
        deadline = start + DEADLINE_NS
        payload = bytes(rng.randrange(256) for _ in range(CHUNK))
        try:
            if i % 2:
                yield array.read(offset, CHUNK, deadline_ns=deadline)
            else:
                yield array.write(offset, CHUNK, payload, deadline_ns=deadline)
        except DeadlineExceeded:
            kind = "deadline"
        except Busy:
            kind = "busy"
        except IoError:
            kind = "ioerror"
        else:
            kind = "ok"
        resolved.append((kind, env.now - start))

    def driver():
        for i in range(10):
            env.process(one(i), name=f"io{i}")
            yield env.timeout(500_000)

    env.process(driver(), name="driver")
    env.run()
    assert len(resolved) == 10
    # the drain window of the attempt in flight when the budget expires is
    # itself clamped to the remaining budget, so worst case is roughly
    # deadline + one full drain (drain_factor * clamped timeout)
    slack = array.drain_factor * TIMEOUT_NS if hasattr(array, "drain_factor") else 2 * TIMEOUT_NS
    for kind, elapsed in resolved:
        assert elapsed <= DEADLINE_NS + slack + TIMEOUT_NS, (kind, elapsed)
    # the fault actually bit: not everything sailed through cleanly
    assert any(kind != "ok" for kind, _ in resolved), resolved


@pytest.mark.parametrize("system", CHAOS_SYSTEMS)
def test_deadline_failures_are_typed_and_terminal(system):
    """A tight budget under an error burst surfaces as DeadlineExceeded
    (never a bare timeout hang) and bumps the deadline counter."""
    env, array = build_faulted_array(
        system, "error_burst", OverloadConfig(default_deadline_ns=3 * MS)
    )
    stripe_bytes = array.geometry.stripe_data_bytes
    kinds = []

    def one(i):
        try:
            # member 1 serves errors: reads across it must retry/reconstruct
            yield array.read((i % STRIPES) * stripe_bytes, stripe_bytes)
        except DeadlineExceeded:
            kinds.append("deadline")
        except IoError:
            kinds.append("ioerror")
        else:
            kinds.append("ok")

    def driver():
        for i in range(6):
            env.process(one(i), name=f"io{i}")
            yield env.timeout(1 * MS)

    env.process(driver(), name="driver")
    env.run()
    assert len(kinds) == 6
    assert env.now < 100 * MS  # nothing hung waiting on the sick member


@pytest.mark.parametrize("system", CHAOS_SYSTEMS)
def test_retry_budget_exhaustion_is_terminal_ioerror(system):
    """With a dry retry budget the retry loop sheds instead of amplifying:
    ops fail with terminal IoError and the denial counter records it."""
    env, array = build_faulted_array(
        system,
        "fail_slow",
        OverloadConfig(retry_deposit_ratio=0.0, retry_burst=1.0),
    )
    stripe_bytes = array.geometry.stripe_data_bytes
    kinds = []

    def one(i):
        try:
            yield array.read((i % STRIPES) * stripe_bytes, CHUNK)
        except (Busy, DeadlineExceeded):
            kinds.append("typed")
        except IoError:
            kinds.append("ioerror")
        else:
            kinds.append("ok")

    def driver():
        for i in range(8):
            env.process(one(i), name=f"io{i}")
            yield env.timeout(1 * MS)

    env.process(driver(), name="driver")
    env.run()
    assert len(kinds) == 8
    # the 80x fail-slow member forces timeouts and retries; with only one
    # token in the bucket and nothing deposited, denials must occur
    assert array.qos.stats.retries_denied > 0
    assert "ioerror" in kinds


@pytest.mark.parametrize("system", CHAOS_SYSTEMS)
def test_generous_budget_still_completes_under_faults(system):
    """Protection must not break correctness: with sane knobs and a
    transient burst, deadlined I/O completes once the fault clears."""
    env, array = build_faulted_array(
        system, "error_burst", OverloadConfig(retry_deposit_ratio=0.5)
    )
    # heal the burst early so post-fault ops have a healthy array
    stripe_bytes = array.geometry.stripe_data_bytes
    done = []

    def driver():
        yield env.timeout(250 * MS)  # burst (200 ms) is over
        payload = bytes(CHUNK)
        yield array.write(0, CHUNK, payload, deadline_ns=env.now + 50 * MS)
        data = yield array.read(0, CHUNK, deadline_ns=env.now + 50 * MS)
        done.append(bytes(data))

    env.process(driver(), name="driver")
    env.run()
    assert done == [bytes(CHUNK)]
