"""Failure-domain topology, correlated fault events, and the domain-aware
chaos budget.

The topology is pure bookkeeping (attaching one changes nothing until an
event references a domain), so the tests here pin three things: the
deterministic blast-radius map itself, the budget invariant — a generated
plan never schedules more simultaneous hard faults than parity, even when
whole enclosures or manufacturing batches die together — and the
end-to-end property that correlated + gray chaos schedules recover to a
verified, scrub-clean array.
"""

from collections import Counter

import pytest

from repro.faults.chaos import CHAOS_SYSTEMS, run_chaos_schedule
from repro.faults.domains import (
    DOMAIN_KINDS,
    DomainTopology,
    batch_storm_victims,
    default_topology,
)
from repro.faults.events import (
    BatchFailureStorm,
    DomainOutage,
    DriveFail,
    DriveHeal,
    GrayDriveStutter,
    GrayNicFlap,
    ServerCrash,
)
from repro.faults.plan import chaos_plan

MS = 1_000_000


class TestTopology:
    def test_every_kind_partitions_the_servers(self):
        topo = default_topology(12)
        for kind in DOMAIN_KINDS:
            seen = []
            for domain_id in topo.domains(kind):
                seen.extend(topo.members(kind, domain_id))
            assert sorted(seen) == list(range(12)), kind

    def test_domains_nest(self):
        # all members of one enclosure share a rack; all members of one
        # rack share a power feed
        topo = default_topology(12)
        for enclosure in topo.domains("enclosure"):
            racks = {topo.domain_of("rack", s) for s in topo.members("enclosure", enclosure)}
            assert len(racks) == 1
        for rack in topo.domains("rack"):
            feeds = {topo.domain_of("power", s) for s in topo.members("rack", rack)}
            assert len(feeds) == 1

    def test_default_shape_for_twelve_members(self):
        topo = default_topology(12)
        assert len(topo.domains("enclosure")) == 6
        assert len(topo.domains("rack")) == 3
        assert len(topo.domains("power")) == 2
        assert len(topo.domains("batch")) == 2
        for batch in topo.domains("batch"):
            assert len(topo.members("batch", batch)) == 6

    def test_construction_is_deterministic(self):
        a = DomainTopology(10, batch_seed=4)
        b = DomainTopology(10, batch_seed=4)
        assert a.describe() == b.describe()
        assert [str(d) for d in a.all_domains()] == [str(d) for d in b.all_domains()]

    def test_batch_seed_scatters_batches(self):
        # batches are a seeded shuffle, not consecutive runs: at least one
        # batch must straddle multiple enclosures
        topo = default_topology(12)
        for batch in topo.domains("batch"):
            enclosures = {
                topo.domain_of("enclosure", s) for s in topo.members("batch", batch)
            }
            assert len(enclosures) > 1

    def test_unknown_kind_raises(self):
        topo = default_topology(6)
        with pytest.raises(ValueError, match="unknown domain kind"):
            topo.domain_of("blast", 0)

    @pytest.mark.parametrize(
        "kwargs",
        [dict(num_servers=0), dict(num_servers=6, batches=0),
         dict(num_servers=6, servers_per_enclosure=0)],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            DomainTopology(**kwargs)


class TestBatchStormVictims:
    def test_victims_come_from_the_batch_in_hazard_order(self):
        topo = default_topology(12)
        storm = BatchFailureStorm(
            at_ns=5 * MS, batch_id=1, count=3, spread_ns=4 * MS, shape=1.0, seed=99
        )
        timeline = batch_storm_victims(topo, storm)
        assert len(timeline) == 3
        batch = set(topo.members("batch", 1))
        times = [t for _, t in timeline]
        assert all(victim in batch for victim, _ in timeline)
        assert times == sorted(times)
        assert all(t >= storm.at_ns for t in times)

    def test_timeline_is_deterministic_in_the_event_seed(self):
        topo = default_topology(12)
        storm = BatchFailureStorm(
            at_ns=0, batch_id=0, count=2, spread_ns=3 * MS, shape=0.7, seed=7
        )
        assert batch_storm_victims(topo, storm) == batch_storm_victims(topo, storm)

    def test_count_caps_at_batch_size(self):
        topo = DomainTopology(4, batches=2)
        storm = BatchFailureStorm(
            at_ns=0, batch_id=0, count=10, spread_ns=MS, shape=1.0, seed=1
        )
        assert len(batch_storm_victims(topo, storm)) == 2


def _hard_fault_timeline(plan, topo):
    """Expand every hard fault to ``(fail_at, server)`` and collect heals."""
    fails = []
    heals = {}
    for event in plan:
        if isinstance(event, DriveFail):
            fails.append((event.at_ns, event.server))
        elif isinstance(event, ServerCrash):
            fails.append((event.at_ns, event.server))
        elif isinstance(event, DomainOutage):
            for member in topo.members(event.kind_name, event.domain_id):
                fails.append((event.at_ns, member))
        elif isinstance(event, BatchFailureStorm):
            for victim, fail_at in batch_storm_victims(topo, event):
                fails.append((fail_at, victim))
        elif isinstance(event, DriveHeal):
            heals.setdefault(event.server, []).append(event.at_ns)
    for times in heals.values():
        times.sort()
    return sorted(fails), heals


class TestCorrelatedBudget:
    SEEDS = range(1, 13)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_never_schedules_past_parity(self, seed):
        # replay the plan's own bookkeeping: each hard-failed member is
        # unavailable until its scheduled heal, and at no fault's onset may
        # the simultaneous count exceed parity — domain members included
        num_parity = 2
        topo = default_topology(8)
        plan = chaos_plan(
            seed,
            horizon_ns=60 * MS,
            servers=8,
            num_parity=num_parity,
            correlated_events=3,
            gray_events=2,
            topology=topo,
        )
        fails, heals = _hard_fault_timeline(plan, topo)
        unavailable_until = {}
        for fail_at, server in fails:
            pending = [t for t in heals.get(server, []) if t >= fail_at]
            unavailable_until[server] = pending[0] if pending else 60 * MS
            live = sum(1 for t in unavailable_until.values() if t > fail_at)
            assert live <= num_parity, (
                f"seed {seed}: {live} members scheduled down at {fail_at}"
            )

    def test_correlated_kinds_actually_appear(self):
        outages = storms = 0
        for seed in self.SEEDS:
            plan = chaos_plan(
                seed, horizon_ns=60 * MS, servers=8, num_parity=2,
                correlated_events=3,
            )
            outages += sum(1 for e in plan if isinstance(e, DomainOutage))
            storms += sum(1 for e in plan if isinstance(e, BatchFailureStorm))
        assert outages > 0 and storms > 0

    def test_gray_events_are_soft_and_present(self):
        plan = chaos_plan(
            3, horizon_ns=60 * MS, servers=8, num_parity=2, gray_events=4
        )
        gray = [e for e in plan if isinstance(e, (GrayNicFlap, GrayDriveStutter))]
        assert len(gray) == 4

    def test_base_stream_untouched_by_new_knobs(self):
        # correlated and gray faults come from child RNGs: the loud-fault
        # stream for a seed must survive verbatim inside the extended plan
        base = chaos_plan(5, horizon_ns=60 * MS, servers=8, num_parity=2)
        extended = chaos_plan(
            5, horizon_ns=60 * MS, servers=8, num_parity=2,
            correlated_events=2, gray_events=2,
        )
        base_counts = Counter(base.events)
        extended_counts = Counter(extended.events)
        assert all(
            extended_counts[event] >= count for event, count in base_counts.items()
        )
        assert len(extended) > len(base)


class TestCorrelatedSchedulesEndClean:
    """ISSUE acceptance: correlated chaos schedules run through the full
    harness and end verified with a clean scrub on every controller."""

    @pytest.mark.parametrize("system", CHAOS_SYSTEMS)
    @pytest.mark.parametrize("seed", (3, 7))
    def test_raid6_correlated_storm_recovers(self, system, seed):
        outcome = run_chaos_schedule(
            system, seed, raid6=True, correlated_events=2, gray_events=2
        )
        assert outcome.verified, (
            f"{system} seed {seed}: data diverged\n{outcome.row()}"
        )
        assert outcome.scrub_clean, (
            f"{system} seed {seed}: dirty scrub\n{outcome.row()}"
        )

    def test_replay_is_deterministic(self):
        a = run_chaos_schedule("draid", 3, raid6=True, correlated_events=2, gray_events=2)
        b = run_chaos_schedule("draid", 3, raid6=True, correlated_events=2, gray_events=2)
        assert a == b
