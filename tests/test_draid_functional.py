"""Whole-array functional correctness of dRAID.

Runs the same model-checked workloads as the baseline tests, plus
dRAID-specific behaviours: peer-to-peer parity reduction (byte counting),
the §5.3 pipeline ablation, §5.4 timeout/retry and degraded writes with
host-supplied partials.
"""

import numpy as np
import pytest

from repro.draid import DraidArray
from repro.raid.geometry import RaidLevel
from tests.raid_harness import ArrayHarness, TEST_CHUNK

LEVELS = [RaidLevel.RAID5, RaidLevel.RAID6]


@pytest.fixture(params=LEVELS, ids=lambda l: l.name)
def level(request):
    return request.param


class TestNormalState:
    def test_roundtrip_small(self, level):
        h = ArrayHarness(DraidArray, level=level)
        payload = bytes(range(256)) * 16
        h.write(0, payload)
        h.check_read(0, len(payload))
        h.scrub()

    def test_full_stripe_write(self, level):
        h = ArrayHarness(DraidArray, level=level)
        rng = np.random.default_rng(1)
        size = h.geometry.stripe_data_bytes
        h.write(0, rng.integers(0, 256, size, dtype=np.uint8))
        h.check_read(0, size)
        h.scrub()
        assert h.array.stats.full_stripe_writes == 1

    def test_rmw_write(self, level):
        h = ArrayHarness(DraidArray, level=level)
        rng = np.random.default_rng(2)
        h.write(0, rng.integers(0, 256, 2 * h.geometry.stripe_data_bytes, dtype=np.uint8))
        h.write(TEST_CHUNK // 2, rng.integers(0, 256, 4096, dtype=np.uint8))
        h.check_read(0, 2 * h.geometry.stripe_data_bytes)
        h.scrub()
        assert h.array.stats.rmw_writes >= 1

    def test_rcw_write(self, level):
        h = ArrayHarness(DraidArray, level=level)
        rng = np.random.default_rng(3)
        h.write(0, rng.integers(0, 256, h.geometry.stripe_data_bytes, dtype=np.uint8))
        size = h.geometry.stripe_data_bytes - TEST_CHUNK
        h.write(0, rng.integers(0, 256, size, dtype=np.uint8))
        h.check_read(0, h.geometry.stripe_data_bytes)
        h.scrub()
        assert h.array.stats.rcw_writes >= 1

    def test_unaligned_cross_stripe_write(self, level):
        h = ArrayHarness(DraidArray, level=level)
        rng = np.random.default_rng(4)
        offset = h.geometry.stripe_data_bytes - 5000
        size = 2 * h.geometry.stripe_data_bytes + 7777
        h.write(offset, rng.integers(0, 256, size, dtype=np.uint8))
        h.check_read(0, 4 * h.geometry.stripe_data_bytes)
        h.scrub()

    def test_random_workload(self, level):
        h = ArrayHarness(DraidArray, level=level)
        h.random_workload(seed=42, ops=30)
        h.scrub()

    def test_pipeline_disabled_is_equally_correct(self, level):
        h = ArrayHarness(DraidArray, level=level, pipeline=False)
        h.random_workload(seed=43, ops=20)
        h.scrub()

    def test_pipeline_is_faster(self):
        """§5.3: the pipelined data path must beat the serial one."""

        def run(pipeline):
            h = ArrayHarness(DraidArray, pipeline=pipeline)
            rng = np.random.default_rng(5)
            h.write(0, rng.integers(0, 256, 3 * h.geometry.stripe_data_bytes, dtype=np.uint8))
            start = h.env.now
            for i in range(8):
                h.write(i * 4096, rng.integers(0, 256, 4096, dtype=np.uint8))
            return h.env.now - start

        assert run(pipeline=True) < run(pipeline=False)


class TestPeerToPeerDataPath:
    def test_rmw_host_tx_is_write_size_not_4x(self):
        """The headline claim: partial-stripe writes move each user byte
        through the host NIC once (vs 2x outbound + 2x inbound for the
        host-centric baselines)."""
        h = ArrayHarness(DraidArray)
        rng = np.random.default_rng(6)
        h.write(0, rng.integers(0, 256, h.geometry.stripe_data_bytes, dtype=np.uint8))
        host = h.cluster.host.nic
        h.cluster.reset_accounting()
        size = 8192
        h.write(0, rng.integers(0, 256, size, dtype=np.uint8))
        # host TX: the new data + small capsules; nothing like 2x
        assert size <= host.tx_bytes < size + 4096
        # host RX: only completion capsules
        assert host.rx_bytes < 2048

    def test_rmw_partial_parity_flows_between_servers(self):
        h = ArrayHarness(DraidArray)
        rng = np.random.default_rng(7)
        h.write(0, rng.integers(0, 256, h.geometry.stripe_data_bytes, dtype=np.uint8))
        h.cluster.reset_accounting()
        size = 8192
        h.write(0, rng.integers(0, 256, size, dtype=np.uint8))
        data_server = h.geometry.data_drive(0, 0)
        parity_server = h.geometry.parity_drives(0)[0]
        # the data bdev forwarded its delta to the parity bdev
        assert h.cluster.servers[data_server].nic.tx_bytes >= size
        assert h.cluster.servers[parity_server].nic.rx_bytes >= size

    def test_degraded_read_host_rx_only_requested_bytes(self):
        h = ArrayHarness(DraidArray)
        rng = np.random.default_rng(8)
        h.write(0, rng.integers(0, 256, 2 * h.geometry.stripe_data_bytes, dtype=np.uint8))
        h.array.fail_drive(h.geometry.data_drive(0, 0))
        h.cluster.reset_accounting()
        size = 8192
        h.check_read(0, size)  # lost chunk: triggers reconstruction
        host = h.cluster.host.nic
        # §6.1: the host receives only the reconstructed bytes (+capsules),
        # not width-1 source chunks
        assert host.rx_bytes < size + 4096


class TestDegradedState:
    def test_degraded_read_every_drive(self, level):
        rng = np.random.default_rng(9)
        for failed in range(5):
            h = ArrayHarness(DraidArray, level=level)
            blob = rng.integers(0, 256, 4 * h.geometry.stripe_data_bytes, dtype=np.uint8)
            h.write(0, blob)
            h.array.fail_drive(failed)
            h.check_read(0, len(blob))

    def test_degraded_write_full_chunk(self, level):
        h = ArrayHarness(DraidArray, level=level)
        rng = np.random.default_rng(10)
        h.write(0, rng.integers(0, 256, 2 * h.geometry.stripe_data_bytes, dtype=np.uint8))
        h.array.fail_drive(h.geometry.data_drive(0, 0))
        h.write(0, rng.integers(0, 256, TEST_CHUNK, dtype=np.uint8))
        h.check_read(0, 2 * h.geometry.stripe_data_bytes)

    def test_degraded_write_partial_chunk(self, level):
        h = ArrayHarness(DraidArray, level=level)
        rng = np.random.default_rng(11)
        h.write(0, rng.integers(0, 256, 2 * h.geometry.stripe_data_bytes, dtype=np.uint8))
        h.array.fail_drive(h.geometry.data_drive(0, 1))
        h.write(TEST_CHUNK + 1000, rng.integers(0, 256, 2000, dtype=np.uint8))
        h.check_read(0, 2 * h.geometry.stripe_data_bytes)

    def test_degraded_write_failed_parity(self, level):
        h = ArrayHarness(DraidArray, level=level)
        rng = np.random.default_rng(12)
        h.write(0, rng.integers(0, 256, h.geometry.stripe_data_bytes, dtype=np.uint8))
        h.array.fail_drive(h.geometry.parity_drives(0)[0])
        h.write(0, rng.integers(0, 256, 4096, dtype=np.uint8))
        h.check_read(0, h.geometry.stripe_data_bytes)

    def test_degraded_random_workload(self, level):
        h = ArrayHarness(DraidArray, level=level)
        h.random_workload(seed=13, ops=15)
        h.array.fail_drive(1)
        h.random_workload(seed=14, ops=15)

    def test_raid6_double_failure(self):
        h = ArrayHarness(DraidArray, level=RaidLevel.RAID6, drives=6)
        rng = np.random.default_rng(15)
        blob = rng.integers(0, 256, 4 * h.geometry.stripe_data_bytes, dtype=np.uint8)
        h.write(0, blob)
        h.array.fail_drive(0)
        h.array.fail_drive(3)
        h.check_read(0, len(blob))
        # writes fall back to the host path but must stay correct
        h.write(4096, rng.integers(0, 256, 8192, dtype=np.uint8))
        h.check_read(0, len(blob))


class TestFailureHandling:
    def test_transient_stall_still_completes(self, level):
        """§5.4 transient failure: a frozen target delays but never corrupts."""
        h = ArrayHarness(DraidArray, level=level)
        rng = np.random.default_rng(16)
        h.write(0, rng.integers(0, 256, h.geometry.stripe_data_bytes, dtype=np.uint8))
        # freeze one data server for 1 ms (shorter than the op timeout)
        victim = h.geometry.data_drive(0, 0)

        def stall():
            yield h.env.timeout(0)
            # drain-inject: push a long busy period onto the victim's core
            yield h.cluster.servers[victim].cpu.execute(1_000_000)

        h.env.process(stall())
        h.write(0, rng.integers(0, 256, 4096, dtype=np.uint8))
        h.check_read(0, h.geometry.stripe_data_bytes)
        h.scrub()
        assert h.array.stats.retries == 0

    def test_timeout_triggers_full_stripe_retry(self, level):
        """An op exceeding the deadline is retried as a full-stripe write."""
        h = ArrayHarness(DraidArray, level=level)
        h.array.timeout_ns = 500_000  # 0.5 ms deadline
        rng = np.random.default_rng(17)
        h.write(0, rng.integers(0, 256, h.geometry.stripe_data_bytes, dtype=np.uint8))
        victim = h.geometry.data_drive(0, 0)
        # 5 ms of CPU busy on the victim stalls its command handling
        h.cluster.servers[victim].cpu.execute(5_000_000)
        h.write(0, rng.integers(0, 256, 4096, dtype=np.uint8))
        assert h.array.stats.retries >= 1
        h.check_read(0, h.geometry.stripe_data_bytes)
        h.scrub()

    def test_selector_is_used_for_reconstruction(self):
        picks = []

        class SpySelector:
            def pick(self, candidates, region_bytes):
                picks.append(tuple(candidates))
                return candidates[0]

        h = ArrayHarness(DraidArray, selector=SpySelector())
        rng = np.random.default_rng(18)
        h.write(0, rng.integers(0, 256, h.geometry.stripe_data_bytes, dtype=np.uint8))
        h.array.fail_drive(h.geometry.data_drive(0, 0))
        h.check_read(0, 4096)
        assert len(picks) == 1
        # participants: the 3 surviving data drives + P (5-drive RAID-5)
        assert len(picks[0]) == 4
