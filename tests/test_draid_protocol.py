"""Protocol-level tests of the dRAID bdev (driving it without a host
controller): Algorithm 2 order-independence, late-Parity handling (§5.2),
pipelines and the §7 coefficient-weighted forwarding."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.draid.bdev import DraidBdevServer
from repro.draid.protocol import (
    DraidCompletion,
    ParityCmd,
    PartialWriteCmd,
    PeerMsg,
    ReconstructionCmd,
    Subtype,
)
from repro.ec.gf import GF
from repro.nvmeof.messages import NvmeOfCommand, Opcode, next_cid
from repro.sim import Environment

KB = 1024
CHUNK = 16 * KB


def make_bdevs(n=4, functional=True, **kwargs):
    env = Environment()
    cluster = build_cluster(
        env,
        ClusterConfig(num_servers=n, functional_capacity=64 * CHUNK if functional else 0),
    )
    servers = [DraidBdevServer(cluster, i, **kwargs) for i in range(n)]
    host_ends = [
        cluster.host_connection(i).end_for(cluster.host.nic) for i in range(n)
    ]
    return env, cluster, servers, host_ends


def run_collect(env, end, count=1, horizon=100_000_000):
    """Run until ``count`` completions arrive on ``end``."""
    received = []

    def collector():
        while len(received) < count:
            comp = yield end.recv()
            received.append(comp)

    proc = env.process(collector())
    env.run(until=proc)
    return received


class TestPlainOps:
    def test_plain_write_then_read(self):
        env, cluster, servers, ends = make_bdevs()
        payload = np.arange(256, dtype=np.uint8)
        cid = next_cid()
        ends[0].send(NvmeOfCommand(cid, Opcode.WRITE, 0, 256, data=payload))
        (comp,) = run_collect(env, ends[0])
        assert comp.kind == "write" and comp.ok
        cid = next_cid()
        ends[0].send(NvmeOfCommand(cid, Opcode.READ, 0, 256))
        (comp,) = run_collect(env, ends[0])
        assert comp.kind == "read"
        assert np.array_equal(comp.data, payload)

    def test_failed_drive_error_completion(self):
        env, cluster, servers, ends = make_bdevs()
        cluster.servers[1].drive.fail()
        ends[1].send(NvmeOfCommand(next_cid(), Opcode.READ, 0, 256))
        (comp,) = run_collect(env, ends[1])
        assert not comp.ok
        assert "failed" in comp.error


class TestPartialWriteReduce:
    def _rmw(self, env, cluster, ends, cid, old_data, old_parity, new_data):
        """Prime drives, then drive an RMW partial write: bdev0 = data,
        bdev1 = parity."""
        env.run(until=cluster.drives()[0].write(0, len(old_data), old_data))
        env.run(until=cluster.drives()[1].write(0, len(old_parity), old_parity))
        ends[0].send(
            PartialWriteCmd(
                cid, subtype=Subtype.RMW, drive_offset=0, length=len(new_data),
                chunk_offset=0, data_index=0, fwd_offset=0, fwd_length=len(new_data),
                next_dest=1, chunk_drive_offset=0, parity_key=cid, data=new_data,
            )
        )

    def test_rmw_parity_math_end_to_end(self):
        env, cluster, servers, ends = make_bdevs()
        rng = np.random.default_rng(0)
        old_data = rng.integers(0, 256, 4096, dtype=np.uint8)
        old_parity = rng.integers(0, 256, 4096, dtype=np.uint8)
        new_data = rng.integers(0, 256, 4096, dtype=np.uint8)
        cid = next_cid()
        self._rmw(env, cluster, ends, cid, old_data, old_parity, new_data)
        ends[1].send(
            ParityCmd(cid, subtype=Subtype.RMW, parity_drive_offset=0,
                      fwd_offset=0, fwd_length=4096, wait_num=1, key=cid)
        )
        comps = run_collect(env, ends[0], 1) + run_collect(env, ends[1], 1)
        kinds = sorted(c.kind for c in comps)
        assert kinds == ["data", "parity"]
        expected = old_parity ^ old_data ^ new_data
        assert np.array_equal(cluster.drives()[1].peek(0, 4096), expected)
        assert np.array_equal(cluster.drives()[0].peek(0, 4096), new_data)

    def test_late_parity_command(self):
        """§5.2: the Peer partial may arrive long before Parity; the reduce
        must neither lose it nor complete early."""
        env, cluster, servers, ends = make_bdevs()
        rng = np.random.default_rng(1)
        old_data = rng.integers(0, 256, 4096, dtype=np.uint8)
        old_parity = rng.integers(0, 256, 4096, dtype=np.uint8)
        new_data = rng.integers(0, 256, 4096, dtype=np.uint8)
        cid = next_cid()
        self._rmw(env, cluster, ends, cid, old_data, old_parity, new_data)

        def late_parity():
            yield env.timeout(5_000_000)  # far after the peer partial landed
            # before Parity arrives the reduce must not have persisted
            assert np.array_equal(cluster.drives()[1].peek(0, 4096), old_parity)
            state = servers[1]._parity_states[cid]
            assert state.received == 1 and state.cmd is None
            ends[1].send(
                ParityCmd(cid, subtype=Subtype.RMW, parity_drive_offset=0,
                          fwd_offset=0, fwd_length=4096, wait_num=1, key=cid)
            )

        env.process(late_parity())
        run_collect(env, ends[1], 1)
        expected = old_parity ^ old_data ^ new_data
        assert np.array_equal(cluster.drives()[1].peek(0, 4096), expected)

    def test_partial_order_independence(self):
        """Partials reduce identically regardless of arrival order."""

        def run(order_seed):
            env, cluster, servers, ends = make_bdevs(n=5)
            rng = np.random.default_rng(7)
            blocks = [rng.integers(0, 256, 2048, dtype=np.uint8) for _ in range(3)]
            cid = next_cid()
            # deliver three peer partials with different inter-arrival gaps
            import random

            gaps = random.Random(order_seed).sample([1000, 50_000, 400_000], 3)

            def injector():
                for block, gap in zip(blocks, gaps):
                    yield env.timeout(gap)
                    servers[2].peer_ends[4].send(
                        PeerMsg(cid, key=cid, fwd_offset=0, fwd_length=2048,
                                source=("data", 0), data=block)
                    )

            env.process(injector())
            ends[4].send(
                ParityCmd(cid, subtype=Subtype.RW_READ, parity_drive_offset=0,
                          fwd_offset=0, fwd_length=2048, wait_num=3, key=cid)
            )
            run_collect(env, ends[4], 1)
            return cluster.drives()[4].peek(0, 2048)

        results = [run(seed) for seed in range(3)]
        assert all(np.array_equal(results[0], r) for r in results[1:])

    def test_rw_write_forwards_full_chunk_image(self):
        env, cluster, servers, ends = make_bdevs()
        rng = np.random.default_rng(2)
        old_chunk = rng.integers(0, 256, CHUNK, dtype=np.uint8)
        env.run(until=cluster.drives()[0].write(0, CHUNK, old_chunk))
        new_seg = rng.integers(0, 256, 4096, dtype=np.uint8)
        cid = next_cid()
        ends[0].send(
            PartialWriteCmd(
                cid, subtype=Subtype.RW_WRITE, drive_offset=1024, length=4096,
                chunk_offset=1024, data_index=0, fwd_offset=0, fwd_length=CHUNK,
                next_dest=3, chunk_drive_offset=0, parity_key=cid, data=new_seg,
            )
        )
        ends[3].send(
            ParityCmd(cid, subtype=Subtype.RW_READ, parity_drive_offset=0,
                      fwd_offset=0, fwd_length=CHUNK, wait_num=1, key=cid)
        )
        run_collect(env, ends[3], 1)
        expected = old_chunk.copy()
        expected[1024 : 1024 + 4096] = new_seg
        assert np.array_equal(cluster.drives()[3].peek(0, CHUNK), expected)

    def test_coefficient_weighted_forwarding(self):
        """§7 generic codes: dests carry explicit GF coefficients."""
        env, cluster, servers, ends = make_bdevs()
        rng = np.random.default_rng(3)
        chunk_data = rng.integers(0, 256, 2048, dtype=np.uint8)
        env.run(until=cluster.drives()[0].write(0, 2048, chunk_data))
        cid = next_cid()
        coefficient = 0x37
        ends[0].send(
            PartialWriteCmd(
                cid, subtype=Subtype.RW_READ, drive_offset=0, length=0,
                chunk_offset=0, data_index=0, fwd_offset=0, fwd_length=2048,
                next_dest=2, chunk_drive_offset=0, parity_key=cid,
                dests=((2, coefficient),),
            )
        )
        ends[2].send(
            ParityCmd(cid, subtype=Subtype.RW_READ, parity_drive_offset=0,
                      fwd_offset=0, fwd_length=2048, wait_num=1, key=cid)
        )
        run_collect(env, ends[2], 1)
        expected = GF.mul_bytes(coefficient, chunk_data)
        assert np.array_equal(cluster.drives()[2].peek(0, 2048), expected)


class TestReconstructionProtocol:
    def test_also_read_union_single_drive_io(self):
        """ALSO_READ merges the normal read and the recon region into one
        drive I/O covering their union (§6.1)."""
        env, cluster, servers, ends = make_bdevs()
        rng = np.random.default_rng(4)
        chunk_data = rng.integers(0, 256, CHUNK, dtype=np.uint8)
        env.run(until=cluster.drives()[1].write(0, CHUNK, chunk_data))
        reads_before = cluster.drives()[1].stats.read_ops
        cid = next_cid()
        # disjoint regions: read [0,1k), reconstruct [8k,9k); reducer is a
        # different bdev, so this bdev forwards the recon region to it
        ends[1].send(
            ReconstructionCmd(
                cid, subtype=Subtype.ALSO_READ, chunk_drive_offset=0,
                region_offset=8 * KB, region_length=KB, source=("data", 1),
                reducer=0, wait_num=1, lost=("data", 0), num_data=3,
                read_segment=(0, KB, 0),
            )
        )
        comps = run_collect(env, ends[1], 1)
        # one drive I/O covered the union of both regions
        assert cluster.drives()[1].stats.read_ops == reads_before + 1
        assert comps[0].kind == "read"
        assert np.array_equal(comps[0].data, chunk_data[:KB])
        # the reducer received the recon region as a peer partial
        env.run(until=env.now + 1_000_000)
        state = servers[0]._recon_states[cid]
        assert np.array_equal(
            state.blocks[("data", 1)], chunk_data[8 * KB : 9 * KB]
        )

    def test_reducer_decodes_from_peer_partials(self):
        env, cluster, servers, ends = make_bdevs(n=4)
        rng = np.random.default_rng(5)
        # stripe of 3 data chunks; drive3 is parity; drive0 lost
        data = [rng.integers(0, 256, 2048, dtype=np.uint8) for _ in range(3)]
        parity = data[0] ^ data[1] ^ data[2]
        env.run(until=cluster.drives()[1].write(0, 2048, data[1]))
        env.run(until=cluster.drives()[2].write(0, 2048, data[2]))
        env.run(until=cluster.drives()[3].write(0, 2048, parity))
        cid = next_cid()
        for drive, source in ((1, ("data", 1)), (2, ("data", 2)), (3, ("parity", 0))):
            ends[drive].send(
                ReconstructionCmd(
                    cid, subtype=Subtype.NO_READ, chunk_drive_offset=0,
                    region_offset=0, region_length=2048, source=source,
                    reducer=3, wait_num=2, lost=("data", 0), num_data=3,
                )
            )
        comps = run_collect(env, ends[3], 1)
        assert comps[0].kind == "recon"
        assert np.array_equal(comps[0].data, data[0])

    def test_unknown_message_rejected(self):
        env, cluster, servers, ends = make_bdevs()
        ends[0].send(object())
        with pytest.raises(TypeError):
            env.run()
