"""Functional tests for the §7 generalization: dRAID over RS(k+m) codes."""

import numpy as np
import pytest

from repro.baselines.base import ArrayFailureError
from repro.cluster import ClusterConfig, build_cluster
from repro.draid.ec_array import EcDraidArray, EcGeometry
from repro.sim import Environment

KB = 1024
CHUNK = 16 * KB


def make_harness(drives=8, parity=3, stripes=16):
    env = Environment()
    cluster = build_cluster(
        env, ClusterConfig(num_servers=drives, functional_capacity=stripes * CHUNK)
    )
    geometry = EcGeometry(drives, CHUNK, num_parity=parity)
    array = EcDraidArray(cluster, geometry)
    capacity = stripes * geometry.stripe_data_bytes
    model = np.zeros(capacity, dtype=np.uint8)
    return env, cluster, array, model, capacity


def write(env, array, model, offset, data):
    env.run(until=array.write(offset, len(data), data))
    model[offset : offset + len(data)] = data


def check(env, array, model, offset, nbytes):
    got = env.run(until=array.read(offset, nbytes))
    assert np.array_equal(got, model[offset : offset + nbytes])


class TestEcGeometry:
    def test_parities_rotate_and_balance(self):
        g = EcGeometry(8, CHUNK, num_parity=3)
        counts = {d: 0 for d in range(8)}
        for stripe in range(80):
            parities = g.parity_drives(stripe)
            assert len(set(parities)) == 3
            for p in parities:
                counts[p] += 1
        assert set(counts.values()) == {30}

    def test_data_disjoint_from_parity(self):
        g = EcGeometry(9, CHUNK, num_parity=4)
        for stripe in range(18):
            parity = set(g.parity_drives(stripe))
            data = {g.data_drive(stripe, d) for d in range(g.data_per_stripe)}
            assert parity | data == set(range(9))
            assert not parity & data

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            EcGeometry(4, CHUNK, num_parity=0)
        with pytest.raises(ValueError):
            EcGeometry(4, CHUNK, num_parity=3)

    def test_requires_ec_geometry(self):
        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=5))
        from repro.raid.geometry import RaidGeometry, RaidLevel

        with pytest.raises(TypeError):
            EcDraidArray(cluster, RaidGeometry(RaidLevel.RAID5, 5, CHUNK))


class TestEcWrites:
    def test_full_stripe_roundtrip(self):
        env, cluster, array, model, cap = make_harness()
        rng = np.random.default_rng(1)
        blob = rng.integers(0, 256, 3 * array.geometry.stripe_data_bytes, dtype=np.uint8)
        write(env, array, model, 0, blob)
        check(env, array, model, 0, len(blob))

    def test_rmw_small_write(self):
        env, cluster, array, model, cap = make_harness()
        rng = np.random.default_rng(2)
        write(env, array, model, 0,
              rng.integers(0, 256, 2 * array.geometry.stripe_data_bytes, dtype=np.uint8))
        write(env, array, model, 5000, rng.integers(0, 256, 3000, dtype=np.uint8))
        check(env, array, model, 0, 2 * array.geometry.stripe_data_bytes)
        assert array.stats.rmw_writes >= 1

    def test_rcw_write(self):
        env, cluster, array, model, cap = make_harness()
        rng = np.random.default_rng(3)
        size = array.geometry.stripe_data_bytes - CHUNK
        write(env, array, model, 0, rng.integers(0, 256, size, dtype=np.uint8))
        check(env, array, model, 0, size)
        assert array.stats.rcw_writes >= 1

    def test_random_workload(self):
        env, cluster, array, model, cap = make_harness()
        rng = np.random.default_rng(4)
        for _ in range(25):
            size = int(rng.integers(1, 2 * array.geometry.stripe_data_bytes))
            offset = int(rng.integers(0, cap - size))
            if rng.random() < 0.35:
                check(env, array, model, offset, size)
            else:
                write(env, array, model, offset,
                      rng.integers(0, 256, size, dtype=np.uint8))
        check(env, array, model, 0, cap)


class TestEcFailures:
    def test_tolerates_m_failures(self):
        env, cluster, array, model, cap = make_harness(drives=8, parity=3)
        rng = np.random.default_rng(5)
        blob = rng.integers(0, 256, cap, dtype=np.uint8)
        write(env, array, model, 0, blob)
        for drive in (0, 2, 5):  # three failures on an m=3 code
            array.fail_drive(drive)
        check(env, array, model, 0, cap)

    def test_rejects_m_plus_one_failures(self):
        env, cluster, array, model, cap = make_harness(drives=8, parity=2)
        array.fail_drive(0)
        array.fail_drive(1)
        with pytest.raises(ArrayFailureError):
            array.fail_drive(2)

    def test_degraded_write_region_path(self):
        env, cluster, array, model, cap = make_harness()
        rng = np.random.default_rng(6)
        write(env, array, model, 0, rng.integers(0, 256, cap, dtype=np.uint8))
        failed = array.geometry.data_drive(0, 0)
        array.fail_drive(failed)
        write(env, array, model, 1000, rng.integers(0, 256, 2000, dtype=np.uint8))
        check(env, array, model, 0, 2 * array.geometry.stripe_data_bytes)

    def test_degraded_writes_under_double_failure(self):
        env, cluster, array, model, cap = make_harness(drives=8, parity=3)
        rng = np.random.default_rng(7)
        write(env, array, model, 0, rng.integers(0, 256, cap, dtype=np.uint8))
        array.fail_drive(1)
        array.fail_drive(4)
        write(env, array, model, 3000, rng.integers(0, 256, 40_000, dtype=np.uint8))
        check(env, array, model, 0, cap)

    def test_parity_consistency_via_decode(self):
        """After a workload, every stripe must decode from ANY k shards."""
        env, cluster, array, model, cap = make_harness(drives=7, parity=2, stripes=8)
        rng = np.random.default_rng(8)
        write(env, array, model, 0, rng.integers(0, 256, cap, dtype=np.uint8))
        write(env, array, model, 777, rng.integers(0, 256, 9999, dtype=np.uint8))
        g = array.geometry
        for stripe in range(3):
            shards = {}
            for d in range(g.data_per_stripe):
                drive = g.data_drive(stripe, d)
                shards[d] = cluster.drives()[drive].peek(stripe * CHUNK, CHUNK)
            for j, p in enumerate(g.parity_drives(stripe)):
                shards[g.data_per_stripe + j] = cluster.drives()[p].peek(stripe * CHUNK, CHUNK)
            # drop two arbitrary shards, decode, compare with data shards
            import random

            keep = dict(shards)
            for victim in random.Random(stripe).sample(sorted(keep), 2):
                del keep[victim]
            recovered = array.code.decode(keep, length=CHUNK)
            for d in range(g.data_per_stripe):
                assert np.array_equal(recovered[d], shards[d]), f"stripe {stripe} shard {d}"
