"""Unit and property-based tests for GF(2^8) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.gf import GF, GF256, RAID6_POLY

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


def test_singleton_uses_raid6_polynomial():
    assert GF.poly == RAID6_POLY


def test_known_values():
    # g^1 = 2, g^8 = 0x1d (the reduction of x^8 mod the polynomial)
    assert GF.gen_pow(0) == 1
    assert GF.gen_pow(1) == 2
    assert GF.gen_pow(8) == 0x1D
    # a worked example from Anvin's paper: 0x8d * 2 = 0x07 under 0x11d
    assert GF.mul(0x8D, 2) == ((0x8D << 1) ^ 0x11D) & 0xFF


def test_non_primitive_polynomial_rejected():
    # x^8 + x^4 + x^3 + x + 1 (0x11B, the AES polynomial) is irreducible
    # but 2 is not a primitive element for it.
    with pytest.raises(ValueError):
        GF256(0x11B)


def test_bad_polynomial_degree_rejected():
    with pytest.raises(ValueError):
        GF256(0x1F)


@given(a=elements, b=elements)
def test_mul_commutative(a, b):
    assert GF.mul(a, b) == GF.mul(b, a)


@given(a=elements, b=elements, c=elements)
def test_mul_associative(a, b, c):
    assert GF.mul(GF.mul(a, b), c) == GF.mul(a, GF.mul(b, c))


@given(a=elements, b=elements, c=elements)
def test_distributive(a, b, c):
    assert GF.mul(a, b ^ c) == GF.mul(a, b) ^ GF.mul(a, c)


@given(a=elements)
def test_multiplicative_identity(a):
    assert GF.mul(a, 1) == a
    assert GF.mul(a, 0) == 0


@given(a=nonzero)
def test_inverse(a):
    assert GF.mul(a, GF.inv(a)) == 1


@given(a=elements, b=nonzero)
def test_div_inverts_mul(a, b):
    assert GF.div(GF.mul(a, b), b) == a


def test_div_by_zero():
    with pytest.raises(ZeroDivisionError):
        GF.div(5, 0)
    with pytest.raises(ZeroDivisionError):
        GF.inv(0)


@given(base=nonzero, e1=st.integers(-300, 300), e2=st.integers(-300, 300))
def test_pow_laws(base, e1, e2):
    assert GF.mul(GF.pow(base, e1), GF.pow(base, e2)) == GF.pow(base, e1 + e2)


def test_pow_zero_base():
    assert GF.pow(0, 0) == 1
    assert GF.pow(0, 5) == 0
    with pytest.raises(ZeroDivisionError):
        GF.pow(0, -1)


def test_generator_cycles_through_all_nonzero():
    seen = {GF.gen_pow(i) for i in range(255)}
    assert seen == set(range(1, 256))


@given(c=elements, data=st.binary(min_size=1, max_size=64))
def test_mul_bytes_matches_scalar(c, data):
    arr = np.frombuffer(data, dtype=np.uint8)
    out = GF.mul_bytes(c, arr)
    assert [GF.mul(c, int(b)) for b in arr] == out.tolist()


@given(c=elements, data=st.binary(min_size=1, max_size=64))
def test_mul_bytes_inplace_xor(c, data):
    arr = np.frombuffer(data, dtype=np.uint8)
    acc = np.zeros_like(arr)
    GF.mul_bytes_inplace_xor(acc, c, arr)
    assert np.array_equal(acc, GF.mul_bytes(c, arr))


class TestMatrices:
    def test_identity_inverse(self):
        eye = np.eye(4, dtype=np.uint8)
        assert np.array_equal(GF.mat_inv(eye), eye)

    @given(st.integers(1, 5), st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_invertible_roundtrip(self, n, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        for _ in range(10):
            m = rng.integers(0, 256, size=(n, n), dtype=np.uint8)
            try:
                inv = GF.mat_inv(m)
            except np.linalg.LinAlgError:
                continue
            prod = GF.mat_mul(m, inv)
            assert np.array_equal(prod, np.eye(n, dtype=np.uint8))
            return
        # singular 10 times in a row is vanishingly unlikely but legal

    def test_singular_raises(self):
        m = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            GF.mat_inv(m)

    def test_mat_mul_shape_mismatch(self):
        with pytest.raises(ValueError):
            GF.mat_mul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))

    def test_vandermonde_values(self):
        v = GF.vandermonde(3, 3)
        for i in range(3):
            for j in range(3):
                assert v[i, j] == GF.pow(GF.gen_pow(i), j)
