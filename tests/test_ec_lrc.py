"""Property suite for the local-reconstruction code (design-space axis 2).

Hypothesis drives LRC(k, l, g) across parameters and payloads and pins:

* **byte-exact round trips** — encode, erase any pattern up to the
  global-parity reach ``g`` (data, local parity and global parity shards
  alike), decode, compare byte-for-byte;
* **local-first planning** — whenever an erased shard is the only
  erasure inside its group scope, the decode plan repairs it with a
  ``"local"`` XOR step reading only the group (``decode_one`` takes the
  same shortcut), and the plan says so introspectably;
* **typed failure** — patterns beyond reach raise the same
  :class:`~repro.ec.rs.UnrecoverableErasureError` Reed-Solomon raises,
  so callers handle both codes with one except clause.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ec.lrc import LocalReconstructionCode
from repro.ec.rs import ReedSolomon, UnrecoverableErasureError


@st.composite
def lrc_cases(draw):
    k = draw(st.integers(min_value=2, max_value=10))
    l = draw(st.integers(min_value=1, max_value=min(3, k)))
    g = draw(st.integers(min_value=1, max_value=3))
    length = draw(st.integers(min_value=1, max_value=64))
    payload_seed = draw(st.integers(min_value=0, max_value=1 << 32))
    return k, l, g, length, payload_seed


def _encode_all(code: LocalReconstructionCode, length: int, payload_seed: int):
    rng = np.random.default_rng(payload_seed)
    data = [
        rng.integers(0, 256, size=length, dtype=np.uint8) for _ in range(code.k)
    ]
    parities = code.encode(data)
    shards = {i: s for i, s in enumerate(data)}
    shards.update({code.k + j: p for j, p in enumerate(parities)})
    return data, shards


@given(case=lrc_cases(), pattern_seed=st.integers(min_value=0, max_value=1 << 32))
@settings(max_examples=200, deadline=None)
def test_encode_erase_decode_roundtrip(case, pattern_seed):
    """Any erasure pattern up to size g decodes byte-exact."""
    k, l, g, length, payload_seed = case
    code = LocalReconstructionCode(k, l, g)
    assert code.fault_tolerance == g
    data, shards = _encode_all(code, length, payload_seed)
    rng = np.random.default_rng(pattern_seed)
    count = int(rng.integers(1, g + 1))
    erased = rng.choice(k + l + g, size=count, replace=False)
    survivors = {i: s for i, s in shards.items() if i not in set(int(e) for e in erased)}
    recovered = code.decode(survivors, length)
    for i in range(k):
        assert np.array_equal(recovered[i], data[i]), f"shard {i} mismatch"


@given(case=lrc_cases())
@settings(max_examples=200, deadline=None)
def test_single_in_group_erasure_plans_local(case):
    """One erasure per group -> the planner picks local repair everywhere."""
    k, l, g, length, payload_seed = case
    code = LocalReconstructionCode(k, l, g)
    data, shards = _encode_all(code, length, payload_seed)
    for lost in range(k):
        plan = code.plan_decode([lost])
        assert plan.local_only
        (step,) = plan.steps
        assert step.target == lost
        assert step.method == "local"
        group = code.group_of(lost)
        scope = set(code.groups[group]) | {code.k + group}
        assert set(step.sources) == scope - {lost}
        assert plan.read_count == len(scope) - 1 <= (k + l - 1) // l + 1
        survivors = {i: s for i, s in shards.items() if i != lost}
        assert np.array_equal(code.decode_one(lost, survivors, length), data[lost])
    # a lost *local parity* also repairs locally from its own group
    for j in range(l):
        plan = code.plan_decode([k + j])
        assert plan.local_only
        assert set(plan.steps[0].sources) == set(code.groups[j])


@given(case=lrc_cases(), pattern_seed=st.integers(min_value=0, max_value=1 << 32))
@settings(max_examples=200, deadline=None)
def test_plan_is_local_iff_sole_in_scope(case, pattern_seed):
    """Introspection: a step is local exactly when the erased shard is the
    sole erasure in its group scope; global steps read a decodable basis."""
    k, l, g, length, payload_seed = case
    code = LocalReconstructionCode(k, l, g)
    rng = np.random.default_rng(pattern_seed)
    count = int(rng.integers(1, g + 1))
    erased = sorted(int(e) for e in rng.choice(k + l + g, size=count, replace=False))
    plan = code.plan_decode(erased)
    assert [s.target for s in plan.steps] == erased
    for step in plan.steps:
        scope = code._group_scope(step.target)
        sole = scope is not None and not (set(erased) & scope - {step.target})
        assert (step.method == "local") == sole
        assert not set(step.sources) & set(erased)
        if step.method == "global":
            assert len(step.sources) == k


@given(case=lrc_cases(), pattern_seed=st.integers(min_value=0, max_value=1 << 32))
@settings(max_examples=200, deadline=None)
def test_beyond_reach_raises_same_typed_error_as_rs(case, pattern_seed):
    """Erasing a whole group scope plus all global parities is beyond any
    guarantee: both planner and decoder raise the RS-shared typed error."""
    k, l, g, length, payload_seed = case
    code = LocalReconstructionCode(k, l, g)
    data, shards = _encode_all(code, length, payload_seed)
    group = int(np.random.default_rng(pattern_seed).integers(0, l))
    erased = set(code.groups[group]) | {code.k + group}
    erased |= {k + l + j for j in range(g)}
    if len(erased - {code.k + group}) <= g:
        return  # tiny group: still within the global reach, decodable
    survivors = {i: s for i, s in shards.items() if i not in erased}
    with pytest.raises(UnrecoverableErasureError):
        code.plan_decode(sorted(erased))
    with pytest.raises(UnrecoverableErasureError):
        code.decode(survivors, length)
    # and Reed-Solomon raises the very same type beyond its reach
    rs = ReedSolomon(k, g)
    rs_shards = {i: s for i, s in enumerate(data)}
    rs_shards.update({k + j: p for j, p in enumerate(rs.encode(data))})
    rs_survivors = dict(sorted(rs_shards.items())[: k - 1])
    with pytest.raises(UnrecoverableErasureError):
        rs.decode(rs_survivors, length)


def test_parameter_validation():
    with pytest.raises(ValueError):
        LocalReconstructionCode(1, 1, 1)
    with pytest.raises(ValueError):
        LocalReconstructionCode(4, 5, 1)
    with pytest.raises(ValueError):
        LocalReconstructionCode(4, 2, 0)


def test_decode_one_prefers_local_sources():
    """decode_one touches only the group when the group scope survives."""
    code = LocalReconstructionCode(6, 2, 2)
    rng = np.random.default_rng(7)
    data = [rng.integers(0, 256, size=32, dtype=np.uint8) for _ in range(6)]
    parities = code.encode(data)
    lost = 1
    scope = set(code.groups[0]) | {code.k}
    survivors = {i: data[i] for i in code.groups[0] if i != lost}
    survivors[code.k] = parities[0]
    assert set(survivors) == scope - {lost}
    assert np.array_equal(code.decode_one(lost, survivors, 32), data[lost])
