"""Tests for RAID-5/6 parity math and Reed-Solomon codes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import (
    ReedSolomon,
    raid5_parity,
    raid5_reconstruct,
    raid6_pq,
    raid6_reconstruct,
    xor_blocks,
)
from repro.ec.parity import raid6_q_delta


def _stripe(seed, n, size=32):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=size, dtype=np.uint8) for _ in range(n)]


stripes = st.tuples(st.integers(0, 2**31), st.integers(3, 10), st.integers(1, 128))


class TestXorBlocks:
    def test_simple(self):
        out = xor_blocks([b"\x01\x02", b"\x03\x04"])
        assert out.tolist() == [0x02, 0x06]

    def test_single_block_identity(self):
        out = xor_blocks([b"\xab\xcd"])
        assert out.tolist() == [0xAB, 0xCD]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_blocks([b"\x01", b"\x02\x03"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            xor_blocks([])

    @given(stripes)
    @settings(max_examples=30, deadline=None)
    def test_order_independent(self, params):
        """dRAID's reduce phase relies on XOR commutativity (§5)."""
        seed, n, size = params
        blocks = _stripe(seed, n, size)
        forward = xor_blocks(blocks)
        backward = xor_blocks(blocks[::-1])
        assert np.array_equal(forward, backward)

    @given(stripes)
    @settings(max_examples=30, deadline=None)
    def test_partial_reduction_associative(self, params):
        """Reducing partial parities in halves equals one-shot reduction."""
        seed, n, size = params
        blocks = _stripe(seed, n, size)
        mid = n // 2 or 1
        left = xor_blocks(blocks[:mid])
        right = xor_blocks(blocks[mid:]) if blocks[mid:] else np.zeros(size, dtype=np.uint8)
        assert np.array_equal(left ^ right, xor_blocks(blocks))


class TestRaid5:
    @given(stripes)
    @settings(max_examples=30, deadline=None)
    def test_any_single_erasure_recovers(self, params):
        seed, n, size = params
        data = _stripe(seed, n, size)
        p = raid5_parity(data)
        # lose each data block in turn
        for lost in range(n):
            survivors = [d for i, d in enumerate(data) if i != lost] + [p]
            assert np.array_equal(raid5_reconstruct(survivors), data[lost])
        # lose the parity block
        assert np.array_equal(raid5_reconstruct(data), p)

    def test_rmw_parity_update_identity(self):
        """new_P = old_P ^ old_D ^ new_D — the read-modify-write identity."""
        data = _stripe(7, 5)
        p_old = raid5_parity(data)
        new_block = np.frombuffer(bytes(range(32)), dtype=np.uint8)
        p_via_rmw = p_old ^ data[2] ^ new_block
        data[2] = new_block
        assert np.array_equal(p_via_rmw, raid5_parity(data))


class TestRaid6:
    @given(stripes)
    @settings(max_examples=20, deadline=None)
    def test_zero_and_single_erasures(self, params):
        seed, n, size = params
        data = _stripe(seed, n, size)
        p, q = raid6_pq(data)

        assert raid6_reconstruct({i: d for i, d in enumerate(data)}, n, p, q) == {}

        for lost in range(n):
            present = {i: d for i, d in enumerate(data) if i != lost}
            out = raid6_reconstruct(dict(present), n, p, q)
            assert np.array_equal(out[lost], data[lost])
            # also recover through Q alone (P erased too? no - P present here)
            out_q = raid6_reconstruct(dict(present), n, p=None, q=q)
            assert np.array_equal(out_q[lost], data[lost])

    @given(stripes)
    @settings(max_examples=20, deadline=None)
    def test_double_data_erasure(self, params):
        seed, n, size = params
        data = _stripe(seed, n, size)
        p, q = raid6_pq(data)
        for i in range(n):
            for j in range(i + 1, min(n, i + 3)):  # a few pairs per stripe
                present = {k: d for k, d in enumerate(data) if k not in (i, j)}
                out = raid6_reconstruct(present, n, p, q)
                assert np.array_equal(out[i], data[i])
                assert np.array_equal(out[j], data[j])

    def test_data_plus_parity_erasure(self):
        data = _stripe(3, 6)
        p, q = raid6_pq(data)
        # data + P lost -> recover data through Q
        present = {k: d for k, d in enumerate(data) if k != 2}
        out = raid6_reconstruct(dict(present), 6, p=None, q=q)
        assert np.array_equal(out[2], data[2])
        # data + Q lost -> recover data through P
        out = raid6_reconstruct(dict(present), 6, p=p, q=None)
        assert np.array_equal(out[2], data[2])

    def test_too_many_erasures_rejected(self):
        data = _stripe(11, 5)
        p, q = raid6_pq(data)
        present = {k: d for k, d in enumerate(data) if k not in (0, 1)}
        with pytest.raises(ValueError):
            raid6_reconstruct(dict(present), 5, p=None, q=q)
        with pytest.raises(ValueError):
            raid6_reconstruct(dict(present), 5, p=None, q=None)

    def test_two_data_without_both_parities_rejected(self):
        data = _stripe(12, 5)
        p, q = raid6_pq(data)
        present = {k: d for k, d in enumerate(data) if k not in (1, 3)}
        with pytest.raises(ValueError):
            raid6_reconstruct(dict(present), 5, p=p, q=None)

    @given(stripes, st.integers(0, 255))
    @settings(max_examples=20, deadline=None)
    def test_q_delta_rmw_identity(self, params, fill):
        """Q_new = Q_old ^ g^i (old ^ new): dRAID's per-bdev Q partial."""
        seed, n, size = params
        data = _stripe(seed, n, size)
        _, q_old = raid6_pq(data)
        idx = seed % n
        new_block = np.full(size, fill, dtype=np.uint8)
        delta = raid6_q_delta(idx, data[idx], new_block)
        data[idx] = new_block
        _, q_new = raid6_pq(data)
        assert np.array_equal(q_old ^ delta, q_new)


class TestReedSolomon:
    @given(st.integers(2, 8), st.integers(1, 4), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_any_k_shards_decode(self, k, m, seed):
        rs = ReedSolomon(k, m)
        rng = np.random.default_rng(seed)
        data = [rng.integers(0, 256, size=24, dtype=np.uint8) for _ in range(k)]
        parity = rs.encode(data)
        everything = {i: s for i, s in enumerate(data + parity)}
        # erase m shards chosen by the rng
        erased = rng.choice(k + m, size=m, replace=False)
        survivors = {i: s for i, s in everything.items() if i not in erased}
        recovered = rs.decode(survivors, length=24)
        for i in range(k):
            assert np.array_equal(recovered[i], data[i])

    def test_partial_parities_sum_to_parity(self):
        """§7 generalization: RS parities are order-independent XOR sums."""
        rs = ReedSolomon(5, 3)
        rng = np.random.default_rng(0)
        data = [rng.integers(0, 256, size=16, dtype=np.uint8) for _ in range(5)]
        full = rs.encode(data)
        partials = [rs.partial_parity(i, d) for i, d in enumerate(data)]
        for row in range(3):
            acc = np.zeros(16, dtype=np.uint8)
            for i in range(5):
                acc ^= partials[i][row]
            assert np.array_equal(acc, full[row])

    def test_systematic_property(self):
        rs = ReedSolomon(4, 2)
        assert np.array_equal(rs.encode_matrix[:4, :], np.eye(4, dtype=np.uint8))

    def test_mds_property_every_submatrix_invertible(self):
        """Any k rows of the encode matrix must be invertible (MDS)."""
        import itertools

        from repro.ec.gf import GF

        rs = ReedSolomon(4, 2)
        for rows in itertools.combinations(range(6), 4):
            sub = rs.encode_matrix[list(rows), :]
            GF.mat_inv(sub)  # raises LinAlgError if singular

    def test_not_enough_shards(self):
        rs = ReedSolomon(3, 2)
        with pytest.raises(ValueError):
            rs.decode({0: np.zeros(4, dtype=np.uint8)}, length=4)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ReedSolomon(0, 1)
        with pytest.raises(ValueError):
            ReedSolomon(200, 100)
