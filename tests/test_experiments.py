"""Tests for the experiment harnesses, analysis models and the CLI."""

import pytest

from repro.analysis import (
    architecture_table,
    degraded_read_bound_mb_s,
    drive_bound_write_mb_s,
    nic_bound_write_mb_s,
)
from repro.analysis.table1 import ARCHITECTURES
from repro.experiments.__main__ import main as cli_main
from repro.experiments.common import build_array, fio_point, nic_goodput_mb_s
from repro.experiments.registry import EXPERIMENTS, _thin, run_experiment
from repro.metrics.report import Row, format_table


class TestAnalyticalBounds:
    def test_nic_bound_matches_paper_quotes(self):
        # §2.3: "maximum write throughput is 50 Gbps for RAID-5 and
        # 33.3 Gbps for RAID-6 with a high-end 100 Gbps RDMA NIC"
        # (stated on line rate; our model uses goodput, same ratios)
        raid5 = nic_bound_write_mb_s(num_parity=1)
        raid6 = nic_bound_write_mb_s(num_parity=2)
        assert raid5 == pytest.approx(nic_goodput_mb_s() / 2)
        assert raid6 == pytest.approx(nic_goodput_mb_s() / 3)
        assert nic_bound_write_mb_s(host_centric=False) == pytest.approx(
            nic_goodput_mb_s()
        )

    def test_drive_bound_at_paper_width(self):
        # §9.3: eight targets "can only provide roughly 5000 MB/s"
        bound = drive_bound_write_mb_s(width=8)
        assert 4500 < bound < 6000

    def test_degraded_read_bound(self):
        # §9.4: SPDK reaches 57% of normal-state read at width 8
        bound = degraded_read_bound_mb_s(width=8)
        assert bound / nic_goodput_mb_s() == pytest.approx(0.571, abs=0.01)
        assert degraded_read_bound_mb_s(width=8, host_centric=False) == pytest.approx(
            nic_goodput_mb_s()
        )

    def test_architecture_table_renders(self):
        table = architecture_table()
        for arch in ARCHITECTURES.values():
            assert arch.name in table
        assert "1-4x" in table and "Nx" in table


class TestHarness:
    def test_build_array_rejects_unknown_system(self):
        with pytest.raises(ValueError):
            build_array("ZFS")

    def test_fio_point_runs_quickly(self):
        result = fio_point("dRAID", servers=4, queue_depth=4, fast=True)
        assert result.bandwidth_mb_s > 0

    def test_thin_keeps_endpoints(self):
        points = [1, 2, 3, 4, 5, 6, 7, 8]
        thinned = _thin(points, fast=True)
        assert thinned[0] == 1 and thinned[-1] == 8
        assert len(thinned) < len(points)
        assert _thin(points, fast=False) == points
        assert _thin([1, 2, 3], fast=True) == [1, 2, 3]

    def test_registry_covers_every_table_and_figure(self):
        expected = (
            {
                "table1",
                "availability",
                "reliability",
                "integrity",
                "obs",
                "overload",
                "tenancy",
                "geometries",
            }
            | {f"fig{i:02d}" for i in range(9, 31)}
        )
        assert set(EXPERIMENTS) == expected

    def test_run_experiment_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_table1_experiment_renders(self):
        out = run_experiment("table1")
        assert "dRAID" in out and "Distributed" in out


class TestReport:
    def test_format_table_groups_metrics(self):
        rows = [
            Row("4KB", "SPDK", {"bandwidth_mb_s": 1000.0, "avg_latency_us": 50.0}),
            Row("4KB", "dRAID", {"bandwidth_mb_s": 1500.0, "avg_latency_us": 40.0}),
        ]
        text = format_table("Demo", rows, metric_order=["bandwidth_mb_s"])
        assert "Demo" in text
        assert "1500.0" in text
        assert text.index("bandwidth_mb_s") < text.index("avg_latency_us")

    def test_format_table_missing_metric_is_nan(self):
        rows = [Row(1, "a", {"x": 1.0}), Row(1, "b", {"y": 2.0})]
        text = format_table("t", rows)
        assert "nan" in text


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table1" in out

    def test_unknown_experiment(self, capsys):
        assert cli_main(["fig99"]) == 2

    def test_no_args_shows_help(self, capsys):
        assert cli_main([]) == 2

    def test_runs_table1(self, capsys):
        assert cli_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "dRAID" in out


class TestCsvExport:
    def test_rows_to_csv(self):
        from repro.metrics.report import rows_to_csv

        rows = [
            Row("4KB", "SPDK", {"bandwidth_mb_s": 1000.0}),
            Row("4KB", "dRAID", {"bandwidth_mb_s": 1500.5, "iops": 12.0}),
        ]
        csv = rows_to_csv(rows)
        lines = csv.strip().split("\n")
        assert lines[0] == "x,system,bandwidth_mb_s,iops"
        assert lines[1] == "4KB,SPDK,1000.000,"
        assert lines[2] == "4KB,dRAID,1500.500,12.000"

    def test_cli_csv_output(self, tmp_path, capsys):
        assert cli_main(["table1", "--csv", str(tmp_path)]) == 0
        content = (tmp_path / "table1.csv").read_text()
        assert "write_overhead_x" in content
        assert "dRAID" in content
