"""Differential oracle for the free-server caches (PR 6 satellite).

``BandwidthChannel`` and ``NvmeDrive`` keep three pieces of derived state
between reservations — the earliest-free head, the raw sum of server free
times, and the (free_at, idx) heap mirror — so ``queue_delay_ns`` and
``backlog_ns`` are O(1) in the saturated regime instead of scanning every
internal server on each call.  These tests prove the caches change *no
behavior*: after arbitrary interleavings of reservations, clock advances,
GC stalls and heals, the cached answers must equal a naive recomputation
from the raw ``_free_at`` list, bit for bit.
"""

import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import BandwidthChannel, Environment
from repro.sim.resources import NS_PER_S
from repro.storage import DriveProfile, NvmeDrive

MB = 1_000_000


def _check_channel_caches(channel, now):
    """Cached state and O(1) answers vs. naive recomputation from _free_at."""
    free_at = channel._free_at
    assert channel._earliest_free == min(free_at)
    assert channel._free_sum == sum(free_at)
    if len(free_at) > 1:  # the heap mirror is only maintained when consulted
        assert sorted(channel._free_heap) == sorted(
            (f, i) for i, f in enumerate(free_at)
        )
    naive_delay = max(0, min(free_at) - now)
    naive_backlog = sum(f - now for f in free_at if f > now)
    assert channel.queue_delay_ns() == naive_delay
    assert channel.backlog_ns() == naive_backlog


def _check_drive_caches(drive, now):
    free_at = drive._free_at
    assert drive._earliest_free == min(free_at)
    assert drive._free_sum == sum(free_at)
    if len(free_at) > 1:  # the heap mirror is only maintained when consulted
        assert sorted(drive._free_heap) == sorted(
            (f, i) for i, f in enumerate(free_at)
        )
    naive_backlog = sum(max(0, f - now) for f in free_at)
    assert drive.backlog_ns() == naive_backlog


class TestChannelCacheOracle:
    @given(
        parallelism=st.integers(1, 5),
        steps=st.lists(
            st.tuples(
                st.integers(0, 500_000),   # nbytes reserved
                st.integers(0, 200_000),   # clock advance before reserving
            ),
            min_size=1,
            max_size=40,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_cached_answers_match_naive_scan(self, parallelism, steps):
        env = Environment()
        channel = BandwidthChannel(
            env, rate_bytes_per_s=NS_PER_S, parallelism=parallelism
        )
        _check_channel_caches(channel, env.now)
        for nbytes, advance in steps:
            if advance:
                env.run(until=env.now + advance)
                # idle regime too: caches must answer correctly when some
                # (or all) servers freed up in the past
                _check_channel_caches(channel, env.now)
            channel.reserve(nbytes)
            _check_channel_caches(channel, env.now)

    @given(
        parallelism=st.integers(2, 4),
        sizes=st.lists(st.integers(1, 300_000), min_size=2, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_rate_change_keeps_caches_consistent(self, parallelism, sizes):
        """Changing the link rate mid-sweep (fig. 14-style experiments) must
        not desynchronize the cached per-server rate from the free times."""
        env = Environment()
        channel = BandwidthChannel(
            env, rate_bytes_per_s=NS_PER_S, parallelism=parallelism
        )
        for i, nbytes in enumerate(sizes):
            if i == len(sizes) // 2:
                channel.rate_bytes_per_s = NS_PER_S * 2
                assert channel._per_server_rate == channel._rate / parallelism
            channel.reserve(nbytes)
            _check_channel_caches(channel, env.now)


class TestDriveCacheOracle:
    @given(
        parallelism=st.integers(1, 4),
        steps=st.lists(
            st.tuples(
                st.booleans(),              # read vs write
                st.integers(1, 400_000),    # nbytes
                st.integers(0, 150_000),    # clock advance first
            ),
            min_size=1,
            max_size=30,
        ),
        heal_at=st.integers(0, 29),
    )
    @settings(max_examples=60, deadline=None)
    def test_io_gc_and_heal_match_naive_scan(self, parallelism, steps, heal_at):
        """Reads, writes, GC stalls (bulk _free_at rewrite) and heal (bulk
        reset) must all leave the caches equal to a recomputation."""
        env = Environment()
        profile = DriveProfile(
            name="oracle",
            read_bw_bytes_per_s=1000 * MB,
            write_bw_bytes_per_s=500 * MB,
            read_latency_ns=0,
            write_latency_ns=0,
            parallelism=parallelism,
            gc_after_bytes_written=600_000,  # triggers several stalls
            gc_pause_ns=50_000,
        )
        drive = NvmeDrive(env, profile)
        _check_drive_caches(drive, env.now)
        for i, (is_read, nbytes, advance) in enumerate(steps):
            if advance:
                env.run(until=env.now + advance)
                _check_drive_caches(drive, env.now)
            if i == heal_at:
                drive.heal()
                _check_drive_caches(drive, env.now)
            if is_read:
                drive.read(0, nbytes)
            else:
                drive.write(0, nbytes)
            _check_drive_caches(drive, env.now)


def test_saturated_backlog_is_constant_time():
    """Microbenchmark: at high internal parallelism the cached saturated
    path must beat a naive per-server scan.  The margin asserted is huge
    (cached simply faster than a 256-server Python scan) so the test is
    robust to machine noise while still failing if someone reintroduces an
    O(k) scan on the saturated path."""
    env = Environment()
    k = 256
    channel = BandwidthChannel(env, rate_bytes_per_s=NS_PER_S, parallelism=k)
    for _ in range(k * 2):
        channel.reserve(100_000)  # every server booked far past now
    assert channel._earliest_free > env.now

    calls = 2_000
    start = time.perf_counter()
    for _ in range(calls):
        channel.backlog_ns()
    cached = time.perf_counter() - start

    free_at = channel._free_at
    now = env.now
    start = time.perf_counter()
    for _ in range(calls):
        sum(f - now for f in free_at if f > now)
    naive = time.perf_counter() - start

    assert channel.backlog_ns() == sum(f - now for f in free_at if f > now)
    assert cached < naive, (
        f"cached backlog_ns ({cached * 1e6 / calls:.2f}us/call) is not "
        f"faster than the naive {k}-server scan "
        f"({naive * 1e6 / calls:.2f}us/call)"
    )
