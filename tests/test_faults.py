"""Unit tests for the repro.faults subsystem (§5.4 hardening)."""

import numpy as np
import pytest

from repro.baselines import MdRaid, SpdkRaid
from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.faults import (
    BackoffPolicy,
    DriveErrorBurst,
    DriveFail,
    DriveFailSlow,
    DriveHeal,
    FailSlowDetector,
    FaultInjector,
    FaultPlan,
    NicDegrade,
    chaos_plan,
)
from repro.raid.rebuild import RebuildJob
from repro.sim import Environment
from repro.storage import DriveProfile, NvmeDrive
from repro.storage.drive import DriveTransientError
from tests.raid_harness import ArrayHarness

MS = 1_000_000


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            [DriveFail(5 * MS, server=1), DriveErrorBurst(1 * MS, server=0, duration_ns=MS)]
        )
        assert [e.at_ns for e in plan] == [1 * MS, 5 * MS]
        assert plan.horizon_ns == 5 * MS

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan([DriveFail(-1, server=0)])

    def test_chaos_plan_deterministic(self):
        a = chaos_plan(42, 50 * MS, servers=5)
        b = chaos_plan(42, 50 * MS, servers=5)
        assert a.describe() == b.describe()
        assert len(a) > 0

    def test_chaos_plan_seed_sensitivity(self):
        a = chaos_plan(1, 50 * MS, servers=5)
        b = chaos_plan(2, 50 * MS, servers=5)
        assert a.describe() != b.describe()

    def test_chaos_plan_hard_fault_budget(self):
        # at any instant, scheduled-dead members never exceed num_parity
        for seed in range(20):
            plan = chaos_plan(seed, 80 * MS, servers=6, num_parity=2)
            down = {}
            for event in plan:
                if isinstance(event, DriveFail):
                    down[event.server] = True
                elif isinstance(event, DriveHeal):
                    down.pop(event.server, None)
                assert sum(down.values()) <= 2, f"seed {seed} exceeds budget"


class TestBackoffPolicy:
    def test_timeout_escalates_and_caps(self):
        policy = BackoffPolicy(10 * MS, max_timeout_ns=50 * MS)
        assert policy.timeout_for(0) == 10 * MS
        assert policy.timeout_for(1) == 20 * MS
        assert policy.timeout_for(2) == 40 * MS
        assert policy.timeout_for(3) == 50 * MS  # capped

    def test_timeout_base_override_tracks_live_value(self):
        # arrays reassign .timeout_ns post-construction; the policy must
        # honor the live value, not the one captured at build time
        policy = BackoffPolicy(10 * MS)
        assert policy.timeout_for(1, base_ns=500_000) == 1_000_000

    def test_backoff_jitter_deterministic(self):
        import random

        policy = BackoffPolicy(10 * MS)
        a = [policy.backoff_ns(n, random.Random("x")) for n in range(4)]
        b = [policy.backoff_ns(n, random.Random("x")) for n in range(4)]
        assert a == b
        assert a[0] == 0  # first attempt never sleeps
        assert all(x > 0 for x in a[1:])


class TestFailSlowDetector:
    def _feed(self, det, member, latency, n=10):
        for _ in range(n):
            det.observe(member, latency)

    def test_slow_member_suspected(self):
        det = FailSlowDetector(ratio=3.0, floor_ns=1 * MS)
        for member in (0, 1, 2, 3):
            self._feed(det, member, 2 * MS)
        self._feed(det, 4, 20 * MS)
        assert det.suspect(4)
        assert not det.suspect(0)

    def test_floor_suppresses_fast_outliers(self):
        det = FailSlowDetector(ratio=3.0, floor_ns=1 * MS)
        for member in (0, 1, 2, 3):
            self._feed(det, member, 100)
        self._feed(det, 4, 900)  # 9x peers but under the absolute floor
        assert not det.suspect(4)

    def test_min_samples_gate(self):
        det = FailSlowDetector(min_samples=8)
        for member in (0, 1, 2):
            self._feed(det, member, 2 * MS)
        det.observe(3, 50 * MS)  # single spike
        assert not det.suspect(3)

    def test_forget_resets_history(self):
        det = FailSlowDetector()
        for member in (0, 1, 2, 3):
            self._feed(det, member, 2 * MS)
        self._feed(det, 4, 30 * MS)
        assert det.suspect(4)
        det.forget(4)
        assert not det.suspect(4)
        assert det.ewma_us(4) is None


class TestDriveFaultState:
    def _drive(self, env):
        profile = DriveProfile(
            name="test",
            read_bw_bytes_per_s=1000 * MS,  # 1 B/ns
            write_bw_bytes_per_s=500 * MS,
            read_latency_ns=10_000,
            write_latency_ns=10_000,
            parallelism=1,
        )
        return NvmeDrive(env, profile, functional_capacity=4096)

    def test_error_burst_is_transient(self):
        env = Environment()
        drive = self._drive(env)
        drive.inject_error_burst(1 * MS)
        with pytest.raises(DriveTransientError):
            drive.read(0, 512)
        env.run(until=2 * MS)
        env.run(until=drive.read(0, 512))  # healthy again

    def test_fail_slow_multiplies_latency(self):
        env = Environment()
        drive = self._drive(env)
        t0 = env.now
        env.run(until=drive.read(0, 4096))
        healthy = env.now - t0
        drive.set_fail_slow(10.0)
        t0 = env.now
        env.run(until=drive.read(0, 4096))
        slow = env.now - t0
        assert slow >= 9 * healthy

    def test_heal_clears_all_residue(self):
        env = Environment()
        drive = self._drive(env)
        drive.fail()
        drive.inject_error_burst(50 * MS)
        drive.set_fail_slow(10.0)
        drive.heal()
        assert not drive.failed
        t0 = env.now
        env.run(until=drive.read(0, 4096))
        first = env.now - t0
        t0 = env.now
        env.run(until=drive.read(0, 4096))
        assert first <= (env.now - t0) * 2  # no lingering slow factor / backlog


@pytest.mark.parametrize(
    "controller_cls", [MdRaid, SpdkRaid, DraidArray], ids=lambda c: c.__name__
)
class TestFailHealRebuild:
    def test_fail_heal_rebuild_restores_data(self, controller_cls):
        """Regression: the replacement drive must not inherit fail-slow or
        GC residue from its previous life (heal(), not repair())."""
        h = ArrayHarness(controller_cls)
        rng = np.random.default_rng(11)
        h.write(0, rng.integers(0, 256, h.capacity, dtype=np.uint8))
        victim = 2
        h.cluster.servers[victim].drive.set_fail_slow(50.0)
        h.array.fail_drive(victim)
        # overwrite part of the array while degraded
        h.write(0, rng.integers(0, 256, 2 * h.geometry.stripe_data_bytes, dtype=np.uint8))
        job = RebuildJob(h.array, victim, h.stripes)
        h.env.run(until=job.start())
        assert victim not in h.array.failed
        drive = h.cluster.servers[victim].drive
        assert drive._slow_mult == 1.0  # residue cleared by heal()
        h.check_read(0, h.capacity)
        h.scrub()


class TestFaultInjector:
    def _harness(self):
        return ArrayHarness(SpdkRaid)

    def test_injector_arms_cluster(self):
        h = self._harness()
        assert not h.array.resilient
        FaultInjector(h.array, FaultPlan([]), num_stripes=h.stripes)
        assert h.cluster.fault_injection is not None
        assert h.array.resilient

    def test_arm_false_leaves_datapath_alone(self):
        h = self._harness()
        FaultInjector(h.array, FaultPlan([]), num_stripes=h.stripes, arm=False)
        assert not h.array.resilient

    def test_applies_events_on_schedule(self):
        h = self._harness()
        plan = FaultPlan(
            [
                DriveFailSlow(1 * MS, server=0, multiplier=4.0, duration_ns=2 * MS),
                NicDegrade(2 * MS, server=1, factor=0.5, duration_ns=2 * MS),
                DriveFail(3 * MS, server=2),
            ]
        )
        injector = FaultInjector(h.array, plan, num_stripes=h.stripes)
        h.env.run(until=5 * MS)
        assert injector.applied == 3
        assert 2 in h.array.failed
        stats = h.array.fault_stats
        assert stats.injected == {
            "DriveFailSlow": 1,
            "NicDegrade": 1,
            "DriveFail": 1,
        }

    def test_heal_runs_rebuild_and_drain_waits(self):
        h = self._harness()
        rng = np.random.default_rng(7)
        h.write(0, rng.integers(0, 256, h.capacity, dtype=np.uint8))
        plan = FaultPlan(
            [DriveFail(1 * MS, server=1), DriveHeal(2 * MS, server=1)]
        )
        injector = FaultInjector(h.array, plan, num_stripes=h.stripes)
        h.env.run(until=injector.drain())
        assert injector.rebuilds == 1
        assert 1 not in h.array.failed
        h.check_read(0, h.capacity)
        h.scrub()

    def test_config_timeout_reaches_arrays(self):
        """Satellite: ClusterConfig.io_timeout_ns replaces the hard-coded
        50 ms constant and parameterizes every controller."""
        env = Environment()
        config = ClusterConfig(num_servers=5, functional_capacity=64 * 1024,
                               io_timeout_ns=7 * MS)
        cluster = build_cluster(env, config)
        from repro.raid.geometry import RaidGeometry, RaidLevel

        geometry = RaidGeometry(RaidLevel.RAID5, 5, 16 * 1024)
        for cls in (MdRaid, SpdkRaid, DraidArray):
            assert cls(cluster, geometry).timeout_ns == 7 * MS
        assert ClusterConfig().io_timeout_ns == 50 * MS  # seed default
