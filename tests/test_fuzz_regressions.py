"""Shrunk fuzzer reproducers, committed as permanent regression tests.

Each test below is the verbatim output of
:func:`repro.verify.fuzz.emit_reproducer` for a schedule the shrinker
minimized (10 random ops down to 2).  The first pins the historical
beyond-parity double-bit-rot case that once escaped the recovery
playbook as a raw ``ChecksumError``; the others pin fail/heal schedules
whose terminal write errors exercise the torn-stripe resync path.  A
change that breaks replay determinism, the shrinker's output format or
the :func:`~repro.verify.fuzz.replay_schedule` API fails here first.
"""


def test_fuzz_spdk_seed159965():
    """Shrunk reproducer (2 ops): clean.

    Replays clean; pins the schedule against regression.
    """
    from repro.verify.fuzz import FuzzOp, FuzzSchedule, replay_schedule

    schedule = FuzzSchedule(
        system='spdk',
        seed=159965,
        drives=4,
        stripes=8,
        chunk=4096,
        ops=(
        FuzzOp(kind='rot', offset=11749, nbytes=2185, drive=1, gap_ns=649361, payload_seed=1058133974),
        FuzzOp(kind='rot', offset=13054, nbytes=3429, drive=2, gap_ns=290855, payload_seed=690604344),
    ),
    )
    outcome = replay_schedule(schedule)
    assert outcome.ok, f"{outcome.failure}: {outcome.detail}"


def test_fuzz_md_seed862790():
    """Shrunk reproducer (2 ops): clean.

    Replays clean; pins the schedule against regression.
    """
    from repro.verify.fuzz import FuzzOp, FuzzSchedule, replay_schedule

    schedule = FuzzSchedule(
        system='md',
        seed=862790,
        drives=4,
        stripes=8,
        chunk=4096,
        ops=(
        FuzzOp(kind='fail', offset=0, nbytes=0, drive=3, gap_ns=575996, payload_seed=0),
        FuzzOp(kind='rot', offset=10978, nbytes=3756, drive=1, gap_ns=247350, payload_seed=940860485),
    ),
    )
    outcome = replay_schedule(schedule)
    assert outcome.ok, f"{outcome.failure}: {outcome.detail}"


def test_fuzz_draid_seed421840():
    """Shrunk reproducer (2 ops): clean.

    Replays clean; pins the schedule against regression.
    """
    from repro.verify.fuzz import FuzzOp, FuzzSchedule, replay_schedule

    schedule = FuzzSchedule(
        system='draid',
        seed=421840,
        drives=4,
        stripes=8,
        chunk=4096,
        ops=(
        FuzzOp(kind='fail', offset=0, nbytes=0, drive=0, gap_ns=323166, payload_seed=0),
        FuzzOp(kind='rot', offset=8512, nbytes=2411, drive=2, gap_ns=293822, payload_seed=735276585),
    ),
    )
    outcome = replay_schedule(schedule)
    assert outcome.ok, f"{outcome.failure}: {outcome.detail}"


def test_fuzz_draid_st_seed1016():
    """Shrunk reproducer (2 ops): clean.

    Replays clean; pins the schedule against regression.  This is the
    first pinned reproducer carrying the design-space axes (declustered
    layout + LRC on the stateless-target controller): the axis lines in
    the ``FuzzSchedule`` literal below are ``emit_reproducer``'s verbatim
    output format, so a change to either side fails here first.
    """
    from repro.verify.fuzz import FuzzOp, FuzzSchedule, replay_schedule

    schedule = FuzzSchedule(
        system='draid-st',
        seed=1016,
        drives=6,
        stripes=8,
        chunk=4096,
        ops=(
        FuzzOp(kind='fail', offset=0, nbytes=0, drive=1, gap_ns=402211, payload_seed=0),
        FuzzOp(kind='write', offset=4096, nbytes=6000, drive=0, gap_ns=118306, payload_seed=424242),
    ),
        layout='declustered',
        layout_seed=4448,
        code='lrc',
        ec_parity=2,
        local_groups=1,
    )
    outcome = replay_schedule(schedule)
    assert outcome.ok, f"{outcome.failure}: {outcome.detail}"


def test_emitted_reproducers_stay_executable():
    """``emit_reproducer`` output is pinned: it must compile and pass
    when exec'd (the contract the committed tests above rely on)."""
    from repro.verify.fuzz import (
        FuzzOp,
        FuzzSchedule,
        emit_reproducer,
        run_schedule,
    )

    schedule = FuzzSchedule(
        system="md",
        seed=7,
        ops=(FuzzOp(kind="write", offset=0, nbytes=512, payload_seed=1),),
    )
    source = emit_reproducer(schedule, run_schedule(schedule))
    namespace = {}
    exec(compile(source, "<reproducer>", "exec"), namespace)
    namespace["test_fuzz_md_seed7"]()


def test_emitted_axes_reproducers_stay_executable():
    """Same contract for schedules carrying the design-space axes: the
    emitted source must replay the axes verbatim (and only emit axis
    lines for non-default values, keeping historical reproducers
    byte-identical)."""
    from repro.verify.fuzz import (
        FuzzOp,
        FuzzSchedule,
        emit_reproducer,
        run_schedule,
    )

    schedule = FuzzSchedule(
        system="draid",
        seed=31,
        drives=6,
        ops=(FuzzOp(kind="write", offset=0, nbytes=2048, payload_seed=9),),
        layout="declustered",
        layout_seed=12,
        code="rs",
        ec_parity=2,
    )
    source = emit_reproducer(schedule, run_schedule(schedule))
    for line in ("layout='declustered'", "layout_seed=12", "code='rs'",
                 "ec_parity=2", "local_groups=1"):
        assert line in source, f"missing axis line {line!r}"
    namespace = {}
    exec(compile(source, "<reproducer>", "exec"), namespace)
    namespace["test_fuzz_draid_seed31"]()
    # default axes stay invisible: historical format byte-unchanged
    legacy = FuzzSchedule(
        system="md",
        seed=7,
        ops=(FuzzOp(kind="write", offset=0, nbytes=512, payload_seed=1),),
    )
    legacy_source = emit_reproducer(legacy, run_schedule(legacy))
    assert "layout" not in legacy_source and "code" not in legacy_source
