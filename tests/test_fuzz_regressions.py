"""Shrunk fuzzer reproducers, committed as permanent regression tests.

Each test below is the verbatim output of
:func:`repro.verify.fuzz.emit_reproducer` for a schedule the shrinker
minimized (10 random ops down to 2).  The first pins the historical
beyond-parity double-bit-rot case that once escaped the recovery
playbook as a raw ``ChecksumError``; the others pin fail/heal schedules
whose terminal write errors exercise the torn-stripe resync path.  A
change that breaks replay determinism, the shrinker's output format or
the :func:`~repro.verify.fuzz.replay_schedule` API fails here first.
"""


def test_fuzz_spdk_seed159965():
    """Shrunk reproducer (2 ops): clean.

    Replays clean; pins the schedule against regression.
    """
    from repro.verify.fuzz import FuzzOp, FuzzSchedule, replay_schedule

    schedule = FuzzSchedule(
        system='spdk',
        seed=159965,
        drives=4,
        stripes=8,
        chunk=4096,
        ops=(
        FuzzOp(kind='rot', offset=11749, nbytes=2185, drive=1, gap_ns=649361, payload_seed=1058133974),
        FuzzOp(kind='rot', offset=13054, nbytes=3429, drive=2, gap_ns=290855, payload_seed=690604344),
    ),
    )
    outcome = replay_schedule(schedule)
    assert outcome.ok, f"{outcome.failure}: {outcome.detail}"


def test_fuzz_md_seed862790():
    """Shrunk reproducer (2 ops): clean.

    Replays clean; pins the schedule against regression.
    """
    from repro.verify.fuzz import FuzzOp, FuzzSchedule, replay_schedule

    schedule = FuzzSchedule(
        system='md',
        seed=862790,
        drives=4,
        stripes=8,
        chunk=4096,
        ops=(
        FuzzOp(kind='fail', offset=0, nbytes=0, drive=3, gap_ns=575996, payload_seed=0),
        FuzzOp(kind='rot', offset=10978, nbytes=3756, drive=1, gap_ns=247350, payload_seed=940860485),
    ),
    )
    outcome = replay_schedule(schedule)
    assert outcome.ok, f"{outcome.failure}: {outcome.detail}"


def test_fuzz_draid_seed421840():
    """Shrunk reproducer (2 ops): clean.

    Replays clean; pins the schedule against regression.
    """
    from repro.verify.fuzz import FuzzOp, FuzzSchedule, replay_schedule

    schedule = FuzzSchedule(
        system='draid',
        seed=421840,
        drives=4,
        stripes=8,
        chunk=4096,
        ops=(
        FuzzOp(kind='fail', offset=0, nbytes=0, drive=0, gap_ns=323166, payload_seed=0),
        FuzzOp(kind='rot', offset=8512, nbytes=2411, drive=2, gap_ns=293822, payload_seed=735276585),
    ),
    )
    outcome = replay_schedule(schedule)
    assert outcome.ok, f"{outcome.failure}: {outcome.detail}"


def test_emitted_reproducers_stay_executable():
    """``emit_reproducer`` output is pinned: it must compile and pass
    when exec'd (the contract the committed tests above rely on)."""
    from repro.verify.fuzz import (
        FuzzOp,
        FuzzSchedule,
        emit_reproducer,
        run_schedule,
    )

    schedule = FuzzSchedule(
        system="md",
        seed=7,
        ops=(FuzzOp(kind="write", offset=0, nbytes=512, payload_seed=1),),
    )
    source = emit_reproducer(schedule, run_schedule(schedule))
    namespace = {}
    exec(compile(source, "<reproducer>", "exec"), namespace)
    namespace["test_fuzz_md_seed7"]()
