"""End-to-end data integrity: checksums, corruption primitives, read-repair
and the online scrub daemon.

Covers the full chain the integrity subsystem promises:

* CRC-32C against the published check value;
* :class:`IntegrityStore` bookkeeping in eager and lazy modes;
* the four :meth:`NvmeDrive.corrupt` fault classes, poison-extent
  hygiene, and the ``heal()`` / ``repair()`` distinction;
* foreground read-repair and pre-write stripe verification on all three
  controllers;
* :class:`ScrubDaemon` passes, pacing and reports;
* regression scenarios: corrupt -> fail -> heal -> scrub clean, and a
  torn stripe that is both bitmap-dirty and checksum-bad being repaired
  exactly once.
"""

import numpy as np
import pytest

from repro.baselines.mdraid import MdRaid
from repro.baselines.spdkraid import SpdkRaid
from repro.draid import DraidArray
from repro.raid.resync import resync_after_crash
from repro.raid.scrub import ScrubReport, scrub_array
from repro.raid.scrubber import ScrubDaemon
from repro.sim import Environment
from repro.storage.drive import NvmeDrive
from repro.storage.integrity import ChecksumError, IntegrityStore, crc32c
from repro.storage.profiles import DELL_AGN_MU

from tests.raid_harness import ArrayHarness, TEST_CHUNK

CONTROLLERS = [MdRaid, SpdkRaid, DraidArray]
CONTROLLER_IDS = ["md", "spdk", "draid"]


def armed_harness(controller_cls, eager=False, **kwargs):
    """An ArrayHarness with the cluster's IntegrityStore armed."""
    h = ArrayHarness(controller_cls, **kwargs)
    store = IntegrityStore(h.geometry.chunk_bytes, eager=eager)
    store.attach(h.cluster)
    return h, store


class TestCrc32c:
    def test_published_check_value(self):
        # the CRC-32C check value from RFC 3720 / the Castagnoli papers
        assert crc32c(b"123456789") == 0xE3069283

    def test_empty_is_zero(self):
        assert crc32c(b"") == 0

    def test_ndarray_matches_bytes(self):
        blob = bytes(range(256)) * 5
        arr = np.frombuffer(blob, dtype=np.uint8)
        assert crc32c(arr) == crc32c(blob)

    def test_incremental_chaining(self):
        assert crc32c(b"6789", crc32c(b"12345")) == crc32c(b"123456789")


class TestIntegrityStore:
    def test_eager_store_detects_byte_flip(self):
        h, store = armed_harness(SpdkRaid, eager=True)
        h.write(0, np.arange(h.geometry.stripe_data_bytes) % 256)
        drive = h.cluster.drives()[0]
        assert store.chunk_ok(drive, 0)
        drive._data[10] ^= 0x5A
        assert not store.chunk_ok(drive, 0)

    def test_lazy_store_trusts_until_finalized(self):
        h, store = armed_harness(SpdkRaid, eager=False)
        h.write(0, np.arange(h.geometry.stripe_data_bytes) % 256)
        drive = h.cluster.drives()[0]
        # lazy mode: a written chunk is trusted until something pins a CRC
        drive._data[10] ^= 0x5A
        assert store.chunk_ok(drive, 0)
        drive._data[10] ^= 0x5A  # restore
        # corruption primitives finalize first, so the rot is caught
        drive.corrupt("bitrot", offset=0, length=512, seed=7)
        assert not store.chunk_ok(drive, 0)

    def test_overwrite_restores_trust(self):
        h, store = armed_harness(SpdkRaid)
        h.write(0, np.arange(h.geometry.stripe_data_bytes) % 256)
        drive = h.cluster.drives()[0]
        drive.corrupt("bitrot", offset=0, length=512, seed=7)
        assert not store.chunk_ok(drive, 0)
        # a clean full-chunk overwrite cures the poison and re-trusts
        fresh = np.full(h.geometry.chunk_bytes, 0xAB, dtype=np.uint8)
        h.env.run(until=drive.write(0, len(fresh), fresh))
        assert store.chunk_ok(drive, 0)
        assert not drive.poison_overlapping(0, h.geometry.chunk_bytes)


class TestCorruptionPrimitives:
    CHUNK = 4096

    def drive(self):
        env = Environment()
        d = NvmeDrive(env, DELL_AGN_MU, name="t.nvme", functional_capacity=8 * self.CHUNK)
        return env, d

    def fill(self, env, drive, offset, value, length):
        data = np.full(length, value, dtype=np.uint8)
        env.run(until=drive.write(offset, length, data))

    def test_bitrot_flips_bytes_and_poisons(self):
        env, d = self.drive()
        self.fill(env, d, 0, 0x11, self.CHUNK)
        d.corrupt("bitrot", offset=0, length=256, seed=3)
        assert not np.array_equal(d.peek(0, 256), np.full(256, 0x11, np.uint8))
        # the seeded mask is nonzero everywhere: every covered byte flips
        assert not (d.peek(0, 256) == 0x11).any()
        assert np.array_equal(d.peek(256, 256), np.full(256, 0x11, np.uint8))
        (ext,) = d.poisoned_extents()
        assert (ext.offset, ext.length, ext.kind) == (0, 256, "BitRot")
        assert d.stats.corruptions == 1

    def test_lost_write_keeps_old_content(self):
        env, d = self.drive()
        self.fill(env, d, 0, 0x11, self.CHUNK)
        d.corrupt("lost")
        self.fill(env, d, 0, 0x22, self.CHUNK)
        assert (d.peek(0, self.CHUNK) == 0x11).all()
        kinds = {e.kind for e in d.poisoned_extents()}
        assert kinds == {"LostWrite"}

    def test_torn_write_lands_first_half(self):
        env, d = self.drive()
        self.fill(env, d, 0, 0x11, self.CHUNK)
        d.corrupt("torn")
        self.fill(env, d, 0, 0x22, self.CHUNK)
        half = self.CHUNK // 2
        assert (d.peek(0, half) == 0x22).all()
        assert (d.peek(half, half) == 0x11).all()
        (ext,) = d.poisoned_extents()
        assert (ext.offset, ext.length, ext.kind) == (half, half, "TornWrite")

    def test_misdirected_write_clobbers_victim(self):
        env, d = self.drive()
        self.fill(env, d, 0, 0x11, self.CHUNK)
        self.fill(env, d, self.CHUNK, 0x33, self.CHUNK)
        d.corrupt("misdirected", shift_bytes=self.CHUNK)
        self.fill(env, d, 0, 0x22, self.CHUNK)
        # target kept its old bytes; the victim got the payload
        assert (d.peek(0, self.CHUNK) == 0x11).all()
        assert (d.peek(self.CHUNK, self.CHUNK) == 0x22).all()
        kinds = {e.kind for e in d.poisoned_extents()}
        assert kinds == {"MisdirectedWrite"}
        assert len(d.poisoned_extents()) == 2

    def test_armed_corruptions_fire_fifo(self):
        env, d = self.drive()
        self.fill(env, d, 0, 0x11, self.CHUNK)
        d.corrupt("lost")
        d.corrupt("torn")
        self.fill(env, d, 0, 0x22, self.CHUNK)  # eaten by the lost write
        assert (d.peek(0, self.CHUNK) == 0x11).all()
        self.fill(env, d, 0, 0x33, self.CHUNK)  # torn: first half lands
        assert (d.peek(0, self.CHUNK // 2) == 0x33).all()

    def test_clean_overwrite_splits_poison(self):
        env, d = self.drive()
        self.fill(env, d, 0, 0x11, self.CHUNK)
        d.corrupt("bitrot", offset=0, length=self.CHUNK, seed=5)
        # overwrite the middle quarter: the poison record must split
        lo, ln = self.CHUNK // 4, self.CHUNK // 4
        self.fill(env, d, lo, 0x44, ln)
        extents = sorted((e.offset, e.length) for e in d.poisoned_extents())
        assert extents == [(0, lo), (lo + ln, self.CHUNK - lo - ln)]
        assert not d.poison_overlapping(lo, ln)

    def test_unknown_kind_rejected(self):
        env, d = self.drive()
        with pytest.raises(ValueError):
            d.corrupt("gamma-ray")
        with pytest.raises(ValueError):
            d.corrupt("misdirected")  # needs shift_bytes > 0

    def test_heal_clears_corruption_residue_repair_does_not(self):
        env, d = self.drive()
        self.fill(env, d, 0, 0x11, self.CHUNK)
        d.corrupt("bitrot", offset=0, length=128, seed=9)
        d.corrupt("lost")
        d.fail()
        d.repair()
        # repair(): replacement-path reset of the failure bit only — the
        # media damage and the armed fault are still there
        assert len(d.poisoned_extents()) == 1
        d.heal()
        # heal(): the in-place recovery also forgets corruption residue
        assert d.poisoned_extents() == ()
        self.fill(env, d, 0, 0x55, self.CHUNK)  # no armed fault left
        assert (d.peek(0, self.CHUNK) == 0x55).all()


@pytest.mark.parametrize("controller_cls", CONTROLLERS, ids=CONTROLLER_IDS)
class TestReadRepair:
    def test_read_repairs_data_chunk(self, controller_cls):
        h, store = armed_harness(controller_cls)
        rng = np.random.default_rng(11)
        h.write(0, rng.integers(0, 256, 4 * h.geometry.stripe_data_bytes, dtype=np.uint8))
        victim = h.geometry.data_drive(0, 0)
        drive = h.cluster.drives()[victim]
        drive.corrupt("bitrot", offset=0, length=512, seed=21)
        assert not store.chunk_ok(drive, 0)
        h.check_read(0, h.geometry.stripe_data_bytes)  # byte-exact again
        stats = h.array.integrity_stats
        assert stats.read_repairs >= 1
        assert stats.detected.get("BitRot", 0) >= 1
        assert stats.total_repaired >= 1
        assert store.chunk_ok(drive, 0)
        h.scrub()

    def test_prewrite_verify_repairs_parity_chunk(self, controller_cls):
        h, store = armed_harness(controller_cls)
        rng = np.random.default_rng(12)
        h.write(0, rng.integers(0, 256, 4 * h.geometry.stripe_data_bytes, dtype=np.uint8))
        parity = h.geometry.parity_drives(0)[0]
        drive = h.cluster.drives()[parity]
        drive.corrupt("bitrot", offset=0, length=512, seed=22)
        # reads never touch parity: the rot is invisible to the read path
        h.check_read(0, h.geometry.stripe_data_bytes)
        assert not store.chunk_ok(drive, 0)
        # ... but a write to the stripe must not launder it into new parity
        h.write(0, rng.integers(0, 256, 2048, dtype=np.uint8))
        stats = h.array.integrity_stats
        assert stats.write_repairs >= 1
        assert store.chunk_ok(drive, 0)
        h.scrub()
        h.check_read(0, h.geometry.stripe_data_bytes)

    def test_detection_latency_recorded(self, controller_cls):
        h, store = armed_harness(controller_cls)
        h.write(0, np.arange(h.geometry.stripe_data_bytes) % 256)
        h.env.run(until=h.env.now + 1_000_000)
        victim = h.geometry.data_drive(0, 0)
        h.cluster.drives()[victim].corrupt("bitrot", offset=0, length=64, seed=1)
        h.env.run(until=h.env.now + 2_000_000)
        h.check_read(0, h.geometry.stripe_data_bytes)
        latencies = h.array.integrity_stats.detection_latencies_ns
        assert latencies and all(lat >= 2_000_000 for lat in latencies)

    def test_corruption_beyond_parity_raises(self, controller_cls):
        h, store = armed_harness(controller_cls)
        rng = np.random.default_rng(13)
        h.write(0, rng.integers(0, 256, h.geometry.stripe_data_bytes, dtype=np.uint8))
        for victim in (h.geometry.data_drive(0, 0), h.geometry.data_drive(0, 1)):
            h.cluster.drives()[victim].corrupt("bitrot", offset=0, length=64, seed=int(victim))
        with pytest.raises(ChecksumError):
            h.read(0, h.geometry.stripe_data_bytes)
        assert h.array.integrity_stats.unrecoverable >= 2


class TestScrubArray:
    def test_report_batches_and_progress(self):
        h = ArrayHarness(SpdkRaid)
        rng = np.random.default_rng(14)
        h.write(0, rng.integers(0, 256, h.capacity, dtype=np.uint8))
        seen = []
        report = scrub_array(
            h.cluster.drives(),
            h.geometry,
            h.stripes,
            batch_stripes=7,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert isinstance(report, ScrubReport)
        assert report.clean and report.stripes_checked == h.stripes
        assert seen[-1] == (h.stripes, h.stripes)
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)

    def test_bad_stripe_reported_once(self):
        h = ArrayHarness(SpdkRaid)
        rng = np.random.default_rng(15)
        h.write(0, rng.integers(0, 256, h.capacity, dtype=np.uint8))
        h.cluster.drives()[2]._data[5 * TEST_CHUNK] ^= 1
        report = scrub_array(h.cluster.drives(), h.geometry, h.stripes, batch_stripes=4)
        assert report.bad_stripes == [5]
        assert not report.clean

    def test_rejects_bad_arguments(self):
        h = ArrayHarness(SpdkRaid)
        with pytest.raises(ValueError):
            scrub_array(h.cluster.drives(), h.geometry, h.stripes, batch_stripes=0)


@pytest.mark.parametrize("controller_cls", CONTROLLERS, ids=CONTROLLER_IDS)
class TestScrubDaemon:
    def test_pass_repairs_parity_rot(self, controller_cls):
        h, store = armed_harness(controller_cls)
        rng = np.random.default_rng(16)
        h.write(0, rng.integers(0, 256, h.capacity, dtype=np.uint8))
        parity = h.geometry.parity_drives(3)[0]
        h.cluster.drives()[parity].corrupt(
            "bitrot", offset=3 * TEST_CHUNK, length=256, seed=33
        )
        daemon = ScrubDaemon(h.array, h.stripes)
        h.env.run(until=daemon.process)
        (report,) = daemon.reports
        assert report.stripes_scanned == h.stripes
        assert report.bad_chunks == 1 and report.repaired_chunks == 1
        assert report.unrecoverable_chunks == 0
        assert h.array.integrity_stats.scrub_repairs == 1
        h.scrub()
        h.check_read(0, h.capacity)

    def test_pacing_slows_the_walk(self, controller_cls):
        h, store = armed_harness(controller_cls)
        h.write(0, np.zeros(h.capacity, dtype=np.uint8))
        fast = ScrubDaemon(h.array, h.stripes, pace_ns=0)
        h.env.run(until=fast.process)
        fast_ns = fast.reports[0].duration_ns
        paced = ScrubDaemon(h.array, h.stripes, pace_ns=1_000_000)
        h.env.run(until=paced.process)
        assert paced.reports[0].duration_ns >= fast_ns + h.stripes * 1_000_000

    def test_requires_armed_store(self, controller_cls):
        h = ArrayHarness(controller_cls)
        with pytest.raises(ValueError):
            ScrubDaemon(h.array, h.stripes)


class TestHealRegression:
    """Satellite: corrupt -> fail -> heal leaves no stale corruption state."""

    @pytest.mark.parametrize("controller_cls", CONTROLLERS, ids=CONTROLLER_IDS)
    def test_corrupt_fail_heal_scrubs_clean(self, controller_cls):
        h, store = armed_harness(controller_cls)
        rng = np.random.default_rng(17)
        h.write(0, rng.integers(0, 256, h.capacity, dtype=np.uint8))
        victim = h.geometry.data_drive(0, 0)
        drive = h.cluster.drives()[victim]
        drive.corrupt("bitrot", offset=0, length=512, seed=44)
        drive.corrupt("lost")  # armed but never fired before the failure
        h.array.fail_drive(victim)
        drive.fail()
        # heal-in-place: poison and armed residue must not survive, but the
        # CRC expectation does — the rotten bytes are still found and fixed
        drive.heal()
        h.array.repair_drive(victim)
        assert drive.poisoned_extents() == ()
        daemon = ScrubDaemon(h.array, h.stripes)
        h.env.run(until=daemon.process)
        assert daemon.reports[0].unrecoverable_chunks == 0
        h.scrub()
        h.check_read(0, h.capacity)


class TestExactlyOnceRepair:
    """Satellite: a torn stripe that is both bitmap-dirty and checksum-bad
    is repaired exactly once by crash resync, not double-written."""

    @pytest.mark.parametrize("controller_cls", [SpdkRaid, DraidArray], ids=["spdk", "draid"])
    def test_resync_and_checksum_repair_compose(self, controller_cls):
        h, store = armed_harness(controller_cls)
        rng = np.random.default_rng(18)
        h.write(0, rng.integers(0, 256, 4 * h.geometry.stripe_data_bytes, dtype=np.uint8))
        victim = h.geometry.data_drive(1, 0)
        h.cluster.drives()[victim].corrupt("torn")
        payload = rng.integers(0, 256, h.geometry.stripe_data_bytes, dtype=np.uint8)
        h.write(h.geometry.stripe_data_bytes, payload)  # torn fault fires here
        # crash model: the write's intent bit never got cleared
        h.array.bitmap.mark(1)
        count = h.env.run(until=resync_after_crash(h.array, h.array.bitmap))
        assert count == 1
        stats = h.array.integrity_stats
        assert stats.total_repaired == 1, "torn chunk must be repaired exactly once"
        assert stats.detected == {"TornWrite": 1}
        h.scrub()
        h.check_read(0, 4 * h.geometry.stripe_data_bytes)
        # a follow-up scrub pass finds nothing left to do
        daemon = ScrubDaemon(h.array, 4)
        h.env.run(until=daemon.process)
        assert daemon.reports[0].clean
        assert stats.total_repaired == 1
