"""Property suite for the pluggable stripe layouts (design-space axis 1).

Hypothesis drives every registered layout across (drives, parity,
stripe width, seed, chunk size) and asserts the invariants the datapath
relies on:

* **address-map bijection** — ``data_drive`` and ``data_index_of_drive``
  are exact inverses, every (stripe, role) lands on exactly one member,
  and distinct logical chunks never share a physical (drive, stripe)
  slot;
* **no co-located chunks** — a stripe never places two of its chunks on
  the same drive, and spare capacity is disjoint from the member set;
* **balance within the declustering bound** — over any window of
  stripes each drive's member/parity/spare load is within the slot
  count of every other drive's, and over a full ``num_drives`` period
  placement is perfectly even;
* **role-preserving spare remap** — after ``remap_to_spare`` the spare
  answers exactly the failed member's placement queries and the stripe
  is still duplicate-free.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.draid.ec_array import EcGeometry
from repro.raid.layout import (
    LAYOUTS,
    DeclusteredLayout,
    RotatingLayout,
    make_layout,
)

KB = 1024


@st.composite
def layout_cases(draw, names=tuple(sorted(LAYOUTS))):
    """(layout instance, num_drives, num_parity) for a registered layout."""
    name = draw(st.sampled_from(names))
    num_parity = draw(st.integers(min_value=1, max_value=3))
    num_drives = draw(st.integers(min_value=num_parity + 2, max_value=12))
    if name == "declustered":
        width = draw(
            st.integers(min_value=num_parity + 1, max_value=num_drives - 1)
        )
        seed = draw(st.integers(min_value=0, max_value=1 << 16))
        layout = make_layout(
            name, num_drives, num_parity, stripe_width=width, seed=seed
        )
    else:
        layout = make_layout(name, num_drives, num_parity)
    return layout, num_drives, num_parity


@given(case=layout_cases(), stripes=st.integers(min_value=1, max_value=48))
@settings(max_examples=200, deadline=None)
def test_address_map_bijection(case, stripes):
    layout, n, p = case
    w = layout.stripe_width
    k = layout.data_per_stripe
    assert k == w - p >= 1
    placements = set()
    for s in range(stripes):
        members = layout.stripe_drives(s)
        parity = layout.parity_drives(s)
        assert members[:p] == parity
        for j, drive in enumerate(members):
            assert 0 <= drive < n
            placements.add((s, j, drive))
        for i in range(k):
            drive = layout.data_drive(s, i)
            assert drive == members[p + i]
            assert layout.data_index_of_drive(s, drive) == i
        for drive in parity:
            with pytest.raises(ValueError):
                layout.data_index_of_drive(s, drive)
        for drive in set(range(n)) - set(members):
            with pytest.raises(ValueError):
                layout.data_index_of_drive(s, drive)
    # every (stripe, slot) maps to exactly one drive: full cardinality
    assert len(placements) == stripes * w


@given(case=layout_cases(), stripes=st.integers(min_value=1, max_value=48))
@settings(max_examples=200, deadline=None)
def test_no_stripe_colocates_chunks(case, stripes):
    layout, n, _ = case
    for s in range(stripes):
        members = layout.stripe_drives(s)
        assert len(set(members)) == layout.stripe_width
        spares = layout.spare_drives(s)
        assert len(set(spares)) == len(spares)
        assert not set(spares) & set(members)
        assert len(members) + len(spares) <= n


@given(case=layout_cases(), periods=st.integers(min_value=1, max_value=4),
       extra=st.integers(min_value=0, max_value=11))
@settings(max_examples=200, deadline=None)
def test_balance_within_declustering_bound(case, periods, extra):
    layout, n, p = case
    w = layout.stripe_width
    stripes = periods * n + min(extra, n - 1)
    member_load = {d: 0 for d in range(n)}
    parity_load = {d: 0 for d in range(n)}
    spare_load = {d: 0 for d in range(n)}
    for s in range(stripes):
        for d in layout.stripe_drives(s):
            member_load[d] += 1
        for d in layout.parity_drives(s):
            parity_load[d] += 1
        for d in layout.spare_drives(s):
            spare_load[d] += 1
    # over any window, per-drive load spread is bounded by the slot count
    # of the role (each drive holds a given window slot once per period)
    for load, slots in (
        (member_load, w),
        (parity_load, p),
        (spare_load, n - w),
    ):
        counts = sorted(load.values())
        assert counts[-1] - counts[0] <= slots
    if stripes % n == 0 and layout.name == "declustered":
        # full periods: the coprime stride makes placement perfectly even
        for load, slots in (
            (member_load, w),
            (parity_load, p),
            (spare_load, n - w),
        ):
            assert set(load.values()) == {stripes * slots // n}


@given(case=layout_cases(), chunk=st.sampled_from((4 * KB, 16 * KB, 128 * KB)),
       stripes=st.integers(min_value=1, max_value=24))
@settings(max_examples=200, deadline=None)
def test_geometry_address_map_uses_layout(case, chunk, stripes):
    """EcGeometry over any layout: logical chunk -> unique physical slot."""
    layout, n, p = case
    g = EcGeometry(n, chunk, p, layout=layout)
    assert g.data_per_stripe == layout.data_per_stripe
    assert g.stripe_data_bytes == layout.data_per_stripe * chunk
    physical = set()
    for offset in range(0, stripes * g.stripe_data_bytes, chunk):
        stripe = offset // g.stripe_data_bytes
        index = (offset % g.stripe_data_bytes) // chunk
        drive = g.data_drive(stripe, index)
        assert g.data_index_of_drive(stripe, drive) == index
        physical.add((drive, stripe * chunk))
    assert len(physical) == stripes * g.data_per_stripe


@given(
    num_parity=st.integers(min_value=1, max_value=3),
    num_drives=st.integers(min_value=4, max_value=16),
    stripes=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=200, deadline=None)
def test_rotating_matches_legacy_formula(num_parity, num_drives, stripes):
    """The default layout IS the historical hard-coded rotation."""
    if num_drives <= num_parity:
        num_drives = num_parity + 2
    layout = RotatingLayout(num_drives, num_parity)
    n = num_drives
    for s in range(stripes):
        first = (n - 1) - (s % n)
        expect = tuple((first + j) % n for j in range(num_parity))
        assert layout.parity_drives(s) == expect
        anchor = expect[-1]
        for i in range(layout.data_per_stripe):
            assert layout.data_drive(s, i) == (anchor + 1 + i) % n
        assert layout.spare_drives(s) == ()


@given(
    num_parity=st.integers(min_value=1, max_value=3),
    num_drives=st.integers(min_value=5, max_value=12),
    seed=st.integers(min_value=0, max_value=1 << 16),
    stripe=st.integers(min_value=0, max_value=63),
    victim_slot=st.integers(min_value=0, max_value=63),
)
@settings(max_examples=200, deadline=None)
def test_remap_to_spare_preserves_roles(
    num_parity, num_drives, seed, stripe, victim_slot
):
    layout = DeclusteredLayout(num_drives, num_parity, seed=seed)
    w = layout.stripe_width
    before = layout.stripe_drives(stripe)
    spares_before = layout.spare_drives(stripe)
    slot = victim_slot % w
    failed = before[slot]
    spare = layout.remap_to_spare(stripe, failed)
    assert spare in spares_before
    after = layout.stripe_drives(stripe)
    assert len(set(after)) == w
    assert failed not in after
    assert after[slot] == spare
    assert all(a == b for i, (a, b) in enumerate(zip(after, before)) if i != slot)
    assert spare not in layout.spare_drives(stripe)
    if slot >= num_parity:
        assert layout.data_drive(stripe, slot - num_parity) == spare
        assert layout.data_index_of_drive(stripe, spare) == slot - num_parity
    else:
        assert layout.parity_drives(stripe)[slot] == spare
    # other stripes are untouched unless they shared the (stripe, drive) key
    other = stripe + 1
    assert failed in layout.stripe_drives(other) or failed not in (
        layout._window(other)[:w]
    )


def test_stride_is_coprime_and_perm_is_permutation():
    for seed in range(32):
        layout = DeclusteredLayout(9, 2, seed=seed)
        assert sorted(layout.perm) == list(range(9))
        assert math.gcd(layout.stride, 9) == 1


def test_make_layout_rejects_unknown():
    with pytest.raises(ValueError):
        make_layout("prime-time", 8, 2)
