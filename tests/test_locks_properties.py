"""Property-based tests for the stripe lock manager (hypothesis).

Four machine-checked properties:

* grants are FIFO in request order, however holds interleave;
* no waiter starves under contention — every acquire is eventually
  granted as long as holders release;
* mutual exclusion holds under scrubber/foreground interleavings (an
  ordered sweep racing random writers, the online-scrub pattern);
* interrupting waiters at arbitrary times never corrupts the lock:
  survivors still win exactly once and the manager ends quiescent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raid.locks import StripeLockManager
from repro.sim import Environment, Interrupt


@given(
    holds=st.lists(st.integers(min_value=1, max_value=20), min_size=2, max_size=8),
    stagger=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=60, deadline=None)
def test_fifo_grant_order(holds, stagger):
    env = Environment()
    locks = StripeLockManager(env)
    grants = []

    def worker(index, hold_ns):
        yield env.timeout(index * stagger)
        yield locks.acquire(0)
        grants.append(index)
        yield env.timeout(hold_ns)
        locks.release(0)

    for i, hold in enumerate(holds):
        env.process(worker(i, hold))
    env.run()
    assert grants == list(range(len(holds)))
    assert not locks.held(0)
    assert locks.queue_length(0) == 0


@given(
    requests=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # stripe
            st.integers(min_value=0, max_value=30),  # arrival
            st.integers(min_value=1, max_value=10),  # hold
        ),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=60, deadline=None)
def test_no_starvation_and_mutual_exclusion(requests):
    env = Environment()
    locks = StripeLockManager(env)
    active = {}  # stripe -> holders (must never exceed 1)
    completed = []

    def worker(index, stripe, arrival, hold_ns):
        yield env.timeout(arrival)
        yield locks.acquire(stripe)
        active[stripe] = active.get(stripe, 0) + 1
        assert active[stripe] == 1, f"two holders on stripe {stripe}"
        yield env.timeout(hold_ns)
        active[stripe] -= 1
        locks.release(stripe)
        completed.append(index)

    for i, (stripe, arrival, hold) in enumerate(requests):
        env.process(worker(i, stripe, arrival, hold))
    env.run()
    # no starvation: every requester finished
    assert sorted(completed) == list(range(len(requests)))
    assert all(not locks.held(s) for s in range(4))


@given(
    writers=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),  # stripe
            st.integers(min_value=0, max_value=40),  # arrival
        ),
        min_size=1,
        max_size=10,
    ),
    scrub_pace=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_scrubber_foreground_interleaving(writers, scrub_pace):
    """An ordered scrub sweep racing random writers (the ScrubDaemon
    pattern) keeps exclusion and both sides complete."""
    env = Environment()
    locks = StripeLockManager(env)
    num_stripes = 6
    active = {}
    scrubbed = []
    wrote = []

    def scrubber():
        for stripe in range(num_stripes):
            yield locks.acquire(stripe)
            active[stripe] = active.get(stripe, 0) + 1
            assert active[stripe] == 1
            yield env.timeout(scrub_pace)
            active[stripe] -= 1
            locks.release(stripe)
            scrubbed.append(stripe)

    def writer(index, stripe, arrival):
        yield env.timeout(arrival)
        yield locks.acquire(stripe)
        active[stripe] = active.get(stripe, 0) + 1
        assert active[stripe] == 1
        yield env.timeout(2)
        active[stripe] -= 1
        locks.release(stripe)
        wrote.append(index)

    env.process(scrubber())
    for i, (stripe, arrival) in enumerate(writers):
        env.process(writer(i, stripe, arrival))
    env.run()
    assert scrubbed == list(range(num_stripes))
    assert sorted(wrote) == list(range(len(writers)))
    assert all(not locks.held(s) for s in range(num_stripes))


@given(
    waiters=st.integers(min_value=2, max_value=6),
    cancel_mask=st.lists(st.booleans(), min_size=2, max_size=6),
    cancel_at=st.integers(min_value=0, max_value=25),
    hold_ns=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=80, deadline=None)
def test_cancel_safety(waiters, cancel_mask, cancel_at, hold_ns):
    """Interrupting any subset of waiters at any time leaves the lock
    usable: every survivor is granted exactly once and nothing leaks."""
    env = Environment()
    locks = StripeLockManager(env)
    mask = (cancel_mask * waiters)[:waiters]
    granted = []
    interrupted = []
    procs = []

    def worker(index):
        try:
            yield locks.acquire(0)
        except Interrupt:
            interrupted.append(index)
            return
        granted.append(index)
        try:
            yield env.timeout(hold_ns)
        except Interrupt:
            pass  # interrupted while holding: still releases below
        locks.release(0)

    for i in range(waiters):
        procs.append(env.process(worker(i)))

    def killer():
        yield env.timeout(cancel_at)
        for i, proc in enumerate(procs):
            if mask[i] and proc.is_alive:
                proc.interrupt("cancelled")

    env.process(killer())
    env.run()
    # each worker either got the lock once or was interrupted while waiting
    assert sorted(granted + interrupted) == list(range(waiters))
    assert len(set(granted)) == len(granted)
    # quiescent: no held stripe, no queued waiter
    assert not locks.held(0)
    assert locks.queue_length(0) == 0
