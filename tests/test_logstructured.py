"""Tests for the NVRAM-staged log-structured RAID baseline (§2.3)."""

import numpy as np
import pytest

from repro.baselines.logstructured import BLOCK, LogStructuredRaid
from repro.cluster import ClusterConfig, build_cluster
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment

KB = 1024
CHUNK = 16 * KB


def make_log_raid(drives=5, log_stripes=32, functional=True):
    env = Environment()
    cluster = build_cluster(
        env,
        ClusterConfig(num_servers=drives,
                      functional_capacity=log_stripes * CHUNK if functional else 0),
    )
    geometry = RaidGeometry(RaidLevel.RAID5, drives, CHUNK)
    array = LogStructuredRaid(cluster, geometry, log_stripes=log_stripes)
    return env, cluster, array


class TestStagingAndFlush:
    def test_write_read_roundtrip_via_staging(self):
        env, cluster, array = make_log_raid()
        payload = np.arange(3 * BLOCK, dtype=np.int32).astype(np.uint8)[: 3 * BLOCK]

        def proc():
            yield array.write(0, len(payload), payload)
            data = yield array.read(0, len(payload))
            return data

        data = env.run(until=env.process(proc()))
        assert np.array_equal(data, payload)
        # small write: staged only, not yet flushed
        assert array.log_stats.stripes_flushed == 0

    def test_flush_emits_full_stripe_writes_only(self):
        env, cluster, array = make_log_raid()
        rng = np.random.default_rng(1)
        stripe_bytes = array.geometry.stripe_data_bytes

        def proc():
            # enough 4 KiB random-offset writes to fill two stripes
            for i in range(2 * array.blocks_per_stripe):
                payload = rng.integers(0, 256, BLOCK, dtype=np.uint8)
                yield array.write((i * 7919 % 256) * BLOCK, BLOCK, payload)
            yield env.timeout(50_000_000)

        env.run(until=env.process(proc()))
        assert array.log_stats.stripes_flushed >= 1
        assert array.stats.full_stripe_writes == array.log_stats.stripes_flushed
        assert array.stats.rmw_writes == 0  # never read-modify-write
        assert array.stats.rcw_writes == 0

    def test_reads_follow_remap_after_flush(self):
        env, cluster, array = make_log_raid()
        rng = np.random.default_rng(2)
        writes = {}

        def proc():
            for i in range(array.blocks_per_stripe + 3):
                offset = i * BLOCK
                payload = rng.integers(0, 256, BLOCK, dtype=np.uint8)
                writes[offset] = payload
                yield array.write(offset, BLOCK, payload)
            yield env.timeout(50_000_000)
            for offset, payload in writes.items():
                data = yield array.read(offset, BLOCK)
                assert np.array_equal(data, payload), f"offset {offset}"

        env.run(until=env.process(proc()))
        assert array.log_stats.stripes_flushed >= 1

    def test_unaligned_write_merges_old_content(self):
        env, cluster, array = make_log_raid()
        rng = np.random.default_rng(3)
        base = rng.integers(0, 256, 2 * BLOCK, dtype=np.uint8)
        patch = rng.integers(0, 256, 1000, dtype=np.uint8)

        def proc():
            yield array.write(0, len(base), base)
            yield array.write(500, len(patch), patch)
            data = yield array.read(0, 2 * BLOCK)
            return data

        data = env.run(until=env.process(proc()))
        expected = base.copy()
        expected[500 : 500 + len(patch)] = patch
        assert np.array_equal(data, expected)

    def test_overwrite_invalidates_logged_copy(self):
        env, cluster, array = make_log_raid()
        rng = np.random.default_rng(4)

        def proc():
            first = rng.integers(0, 256, BLOCK, dtype=np.uint8)
            # fill a whole stripe so block 0 gets flushed to the log
            for i in range(array.blocks_per_stripe):
                payload = first if i == 0 else rng.integers(0, 256, BLOCK, dtype=np.uint8)
                yield array.write(i * BLOCK, BLOCK, payload)
            yield env.timeout(50_000_000)
            second = rng.integers(0, 256, BLOCK, dtype=np.uint8)
            yield array.write(0, BLOCK, second)
            data = yield array.read(0, BLOCK)
            return data, second

        data, second = env.run(until=env.process(proc()))
        assert np.array_equal(data, second)
        # the superseded log slot is dead
        dead = sum(
            1
            for contents in array._stripe_contents.values()
            for b in contents
            if b is None
        )
        assert dead >= 1


class TestGarbageCollection:
    def test_gc_reclaims_dead_stripes(self):
        env, cluster, array = make_log_raid(log_stripes=8)
        array.gc_low_watermark = 0.4
        rng = np.random.default_rng(5)
        blocks = array.blocks_per_stripe

        def proc():
            # overwrite the same small working set repeatedly: stripes fill
            # with dead blocks and GC must reclaim them
            for round_ in range(12):
                for i in range(blocks):
                    payload = rng.integers(0, 256, BLOCK, dtype=np.uint8)
                    yield array.write(i * BLOCK, BLOCK, payload)
                yield env.timeout(20_000_000)

        env.run(until=env.process(proc()))
        assert array.log_stats.gc_runs >= 1
        assert array.log_stats.stripes_flushed > 8  # log wrapped

    def test_write_amplification_reported(self):
        env, cluster, array = make_log_raid()
        rng = np.random.default_rng(6)

        def proc():
            for i in range(array.blocks_per_stripe):
                yield array.write(i * BLOCK, BLOCK,
                                  rng.integers(0, 256, BLOCK, dtype=np.uint8))
            yield env.timeout(50_000_000)

        env.run(until=env.process(proc()))
        # one stripe of user data -> one stripe of device writes (+ parity
        # accounted via geometry): amplification >= 1
        assert array.log_stats.write_amplification() >= 1.0

    def test_data_survives_gc(self):
        env, cluster, array = make_log_raid(log_stripes=8)
        array.gc_low_watermark = 0.4
        rng = np.random.default_rng(7)
        blocks = array.blocks_per_stripe
        model = {}

        def proc():
            for round_ in range(10):
                for i in range(blocks + 1):
                    offset = (i * 3 % (2 * blocks)) * BLOCK
                    payload = rng.integers(0, 256, BLOCK, dtype=np.uint8)
                    model[offset] = payload
                    yield array.write(offset, BLOCK, payload)
                yield env.timeout(20_000_000)
            for offset, payload in model.items():
                data = yield array.read(offset, BLOCK)
                assert np.array_equal(data, payload), f"offset {offset}"

        env.run(until=env.process(proc()))
        assert array.log_stats.gc_runs >= 1


class TestFastWrites:
    def test_staged_write_is_nvram_fast(self):
        """The whole point of the design: writes complete at NVRAM speed."""
        env, cluster, array = make_log_raid(functional=False)

        def proc():
            start = env.now
            yield array.write(0, BLOCK)
            return env.now - start

        latency = env.run(until=env.process(proc()))
        # µs-scale (NVRAM), far below any drive/network round trip
        assert latency < 30_000

    def test_never_issues_partial_stripe_device_writes(self):
        env, cluster, array = make_log_raid(functional=False)
        rng = np.random.default_rng(8)

        def proc():
            for i in range(3 * array.blocks_per_stripe):
                yield array.write((i * 13 % 512) * BLOCK, BLOCK)
            yield env.timeout(100_000_000)

        env.run(until=env.process(proc()))
        assert array.stats.rmw_writes == 0
        assert array.stats.full_stripe_writes >= 2
