"""The numpy LatencyRecorder must match the pre-numpy implementation
bit for bit, and its summary cache must invalidate on new samples."""

import random

import pytest

from repro.metrics.latency import LatencyRecorder, LatencySummary


def _reference_summary(samples):
    """The original pure-Python implementation, kept as the oracle."""

    def percentile(ordered, q):
        if not ordered:
            return 0.0
        idx = q * (len(ordered) - 1)
        lo = int(idx)
        hi = min(lo + 1, len(ordered) - 1)
        frac = idx - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    if not samples:
        return LatencySummary.empty()
    ordered = sorted(samples)
    return LatencySummary(
        count=len(ordered),
        mean_ns=sum(ordered) / len(ordered),
        p50_ns=percentile(ordered, 0.50),
        p90_ns=percentile(ordered, 0.90),
        p99_ns=percentile(ordered, 0.99),
        max_ns=float(ordered[-1]),
    )


@pytest.mark.parametrize("n", [1, 2, 3, 7, 100, 9999])
def test_summarize_matches_reference_bitwise(n):
    rng = random.Random(n)
    recorder = LatencyRecorder()
    samples = [rng.randrange(0, 10**9) for _ in range(n)]
    for s in samples:
        recorder.record(s)
    got = recorder.summarize()
    want = _reference_summary(samples)
    assert got.count == want.count
    assert got.mean_ns == want.mean_ns
    assert got.p50_ns == want.p50_ns
    assert got.p90_ns == want.p90_ns
    assert got.p99_ns == want.p99_ns
    assert got.max_ns == want.max_ns
    # plain Python floats, not numpy scalars (Rows get pickled/compared)
    assert type(got.p99_ns) is float
    assert type(got.max_ns) is float


def test_summarize_duplicates_and_constants():
    recorder = LatencyRecorder()
    for _ in range(50):
        recorder.record(1234)
    summary = recorder.summarize()
    assert summary.mean_ns == 1234.0
    assert summary.p50_ns == summary.p99_ns == summary.max_ns == 1234.0


def test_empty_summary():
    assert LatencyRecorder().summarize() == LatencySummary.empty()


def test_cache_invalidated_by_record_and_reset():
    recorder = LatencyRecorder()
    recorder.record(10)
    first = recorder.summarize()
    assert recorder.summarize() is first  # cached: no new samples
    recorder.record(30)
    second = recorder.summarize()
    assert second.count == 2
    assert second.mean_ns == 20.0
    recorder.reset()
    assert recorder.summarize() == LatencySummary.empty()
    recorder.record(5)
    assert recorder.summarize().count == 1


def test_negative_latency_rejected():
    recorder = LatencyRecorder()
    with pytest.raises(ValueError):
        recorder.record(-1)


def test_record_many_matches_scalar_path():
    rng = random.Random(7)
    samples = [rng.randrange(0, 10**9) for _ in range(500)]
    scalar, bulk = LatencyRecorder(), LatencyRecorder()
    for s in samples:
        scalar.record(s)
    bulk.record_many(samples[:200])
    bulk.record_many(samples[200:])
    assert len(bulk) == len(scalar) == 500
    assert bulk.summarize() == scalar.summarize()
    # samples stay plain Python ints: downstream code concatenates the
    # internal lists and pickles results across process boundaries
    assert all(type(s) is int for s in bulk._samples)


def test_record_many_validates_and_invalidates_cache():
    recorder = LatencyRecorder()
    recorder.record(10)
    first = recorder.summarize()
    recorder.record_many([])  # no-op: cache intact
    assert recorder.summarize() is first
    recorder.record_many([30])
    assert recorder.summarize().count == 2
    with pytest.raises(ValueError):
        recorder.record_many([1, 2, -3])
    with pytest.raises(ValueError):
        recorder.record_many([[1, 2], [3, 4]])


def test_merged_combines_in_order():
    a, b = LatencyRecorder(), LatencyRecorder()
    a.record_many([1, 2, 3])
    b.record_many([4, 5])
    merged = LatencyRecorder.merged(a, b)
    assert merged._samples == [1, 2, 3, 4, 5]
    assert merged.summarize().count == 5
    # merging never aliases the source recorders' sample lists
    merged.record(6)
    assert len(a) == 3 and len(b) == 2
