"""Edge-case coverage across modules: kernel details, waiter semantics,
proxy error paths and timing-mode behaviour."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.draid.host import _OpWaiter
from repro.draid.protocol import DraidCompletion
from repro.nvmeof.messages import IoError
from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt, SimulationError
from repro.sim.core import Condition


class TestKernelEdges:
    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        env = Environment()
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value
        with pytest.raises(SimulationError):
            _ = event.ok

    def test_run_until_past_time_rejected(self):
        env = Environment()
        env.run(until=100)
        with pytest.raises(ValueError):
            env.run(until=50)

    def test_peek_empty_calendar(self):
        env = Environment()
        assert env.peek() is None
        env.timeout(10)
        assert env.peek() == 10

    def test_interrupt_process_waiting_on_condition(self):
        env = Environment()

        def sleeper():
            try:
                yield AllOf(env, [env.timeout(1000), env.timeout(2000)])
            except Interrupt:
                return ("interrupted", env.now)

        def interrupter(target):
            yield env.timeout(10)
            target.interrupt()

        target = env.process(sleeper())
        env.process(interrupter(target))
        assert env.run(until=target) == ("interrupted", 10)

    def test_anyof_failure_propagates(self):
        env = Environment()
        bad = env.event()

        def failer():
            yield env.timeout(5)
            bad.fail(RuntimeError("anyof-child"))

        def waiter():
            try:
                yield AnyOf(env, [bad, env.timeout(100)])
            except RuntimeError as exc:
                return str(exc)

        env.process(failer())
        assert env.run(until=env.process(waiter())) == "anyof-child"

    def test_condition_with_pre_failed_event_defuses(self):
        env = Environment()
        bad = env.event()

        def proc():
            bad.fail(RuntimeError("early"))
            yield env.timeout(10)  # let the failure process
            try:
                yield AllOf(env, [bad, env.timeout(5)])
            except RuntimeError as exc:
                return str(exc)

        # the pre-failed event must not crash the run loop: the process
        # that consumes it defuses the failure
        bad._defused = True
        assert env.run(until=env.process(proc())) == "early"

    def test_process_yielding_non_event_fails(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(Exception):
            env.run()


class TestOpWaiter:
    def test_completes_when_buckets_drain(self):
        env = Environment()
        waiter = _OpWaiter(env, {"data": 2, "parity": 1})
        waiter.on_completion(DraidCompletion(1, "data"))
        assert not waiter.event.triggered
        waiter.on_completion(DraidCompletion(1, "parity"))
        waiter.on_completion(DraidCompletion(1, "data"))
        assert waiter.event.triggered
        assert not waiter.errors

    def test_error_releases_immediately(self):
        env = Environment()
        waiter = _OpWaiter(env, {"data": 5})
        waiter.on_completion(DraidCompletion(1, "data", ok=False, error="boom"))
        assert waiter.event.triggered
        assert len(waiter.errors) == 1

    def test_empty_expectation_is_immediate(self):
        env = Environment()
        waiter = _OpWaiter(env, {})
        assert waiter.event.triggered

    def test_unexpected_kinds_collected_not_counted(self):
        env = Environment()
        waiter = _OpWaiter(env, {"parity": 1})
        waiter.on_completion(DraidCompletion(1, "data"))  # stray callback
        assert not waiter.event.triggered
        waiter.on_completion(DraidCompletion(1, "parity"))
        assert waiter.event.triggered
        kinds = sorted(c.kind for c in waiter.completions)
        assert kinds == ["data", "parity"]

    def test_completions_after_release_dropped(self):
        env = Environment()
        waiter = _OpWaiter(env, {"parity": 1})
        waiter.on_completion(DraidCompletion(1, "parity"))
        waiter.on_completion(DraidCompletion(1, "parity"))
        assert len(waiter.completions) == 1


class TestOffloadErrors:
    def test_proxy_propagates_io_errors(self):
        from repro.draid.offload import OffloadedDraidArray
        from repro.raid.geometry import RaidGeometry, RaidLevel

        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=6))
        array = OffloadedDraidArray(cluster, RaidGeometry(RaidLevel.RAID5, 5, 16384))
        array.controller.max_retries = 0
        array.controller.timeout_ns = 1_000_000
        # fail two drives: RAID-5 reads of lost chunks cannot be served
        array.fail_drive(0)
        cluster.servers[array.controller._server_of(1)].drive.fail()

        def proc():
            try:
                yield array.read(0, 5 * 16384 * 4)  # whole-stripe read
            except IoError as exc:
                return "io-error"

        assert env.run(until=env.process(proc())) == "io-error"


class TestLogStructuredTimingMode:
    def test_timing_mode_reads_and_writes(self):
        from repro.baselines import LogStructuredRaid
        from repro.raid.geometry import RaidGeometry, RaidLevel

        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=5))
        array = LogStructuredRaid(cluster, RaidGeometry(RaidLevel.RAID5, 5, 16384))

        def proc():
            for i in range(array.blocks_per_stripe + 2):
                yield array.write(i * 4096, 4096)
            yield env.timeout(50_000_000)
            data = yield array.read(0, 4096)
            return data

        assert env.run(until=env.process(proc())) is None
        assert array.log_stats.stripes_flushed >= 1


class TestTraceWrites:
    def test_trace_replays_writes(self):
        from repro.draid import DraidArray
        from repro.raid.geometry import RaidGeometry, RaidLevel
        from repro.workloads.trace import TraceRecord, TraceWorkload

        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=5))
        array = DraidArray(cluster, RaidGeometry(RaidLevel.RAID5, 5, 65536))
        records = [
            TraceRecord(i * 100_000, "write", i * 65536, 65536) for i in range(8)
        ]
        result = TraceWorkload(array, records).run()
        assert result.completed == 8
        assert array.stats.writes == 8
