"""Tests for NICs, the fabric and RDMA connections."""

import pytest

from repro.net import Fabric, Nic
from repro.sim import Environment

GB = 1_000_000_000  # 1 GB/s => 1 byte/ns


def make_pair(env, rate_a=GB, rate_b=GB, prop=0, op=0, loopback=0):
    fabric = Fabric(env, propagation_ns=prop, rdma_op_ns=op, loopback_ns=loopback)
    nic_a = Nic(env, rate_a, name="a")
    nic_b = Nic(env, rate_b, name="b")
    conn = fabric.connect(nic_a, nic_b)
    return fabric, nic_a, nic_b, conn


class TestTransferTiming:
    def test_send_takes_size_over_rate(self):
        env = Environment()
        _, _, _, conn = make_pair(env)

        def proc():
            yield conn.a.send("hello", payload_bytes=1000 - 192)
            return env.now

        assert env.run(until=env.process(proc())) == 1000

    def test_propagation_and_op_overhead(self):
        env = Environment()
        _, _, _, conn = make_pair(env, prop=1500, op=3000)

        def proc():
            yield conn.a.send("x", payload_bytes=808)  # 1000 total
            return env.now

        assert env.run(until=env.process(proc())) == 1000 + 1500 + 3000

    def test_slower_receiver_bottlenecks(self):
        env = Environment()
        _, _, _, conn = make_pair(env, rate_a=GB, rate_b=GB // 4)

        def proc():
            yield conn.a.rdma_write(1000)
            return env.now

        assert env.run(until=env.process(proc())) == 4000

    def test_rdma_read_pulls_through_peer_tx(self):
        env = Environment()
        _, nic_a, nic_b, conn = make_pair(env)

        def proc():
            yield conn.a.rdma_read(5000)
            return env.now

        assert env.run(until=env.process(proc())) == 5000
        assert nic_b.tx_bytes == 5000
        assert nic_a.rx_bytes == 5000
        assert nic_a.tx_bytes == 0

    def test_rdma_write_direction_accounting(self):
        env = Environment()
        _, nic_a, nic_b, conn = make_pair(env)

        def proc():
            yield conn.a.rdma_write(3000)

        env.run(until=env.process(proc()))
        assert nic_a.tx_bytes == 3000
        assert nic_b.rx_bytes == 3000
        assert nic_b.tx_bytes == 0

    def test_full_duplex_no_interference(self):
        env = Environment()
        _, _, _, conn = make_pair(env)
        done = []

        def writer():
            yield conn.a.rdma_write(10_000)
            done.append(("w", env.now))

        def reader():
            yield conn.a.rdma_read(10_000)
            done.append(("r", env.now))

        env.process(writer())
        env.process(reader())
        env.run()
        # write uses a.tx/b.rx, read uses b.tx/a.rx: fully concurrent.
        assert done == [("w", 10_000), ("r", 10_000)]

    def test_shared_tx_serializes(self):
        env = Environment()
        fabric = Fabric(env, propagation_ns=0, rdma_op_ns=0)
        hub = Nic(env, GB, name="hub")
        spoke1 = Nic(env, GB, name="s1")
        spoke2 = Nic(env, GB, name="s2")
        c1 = fabric.connect(hub, spoke1)
        c2 = fabric.connect(hub, spoke2)
        done = []

        def proc(conn, tag):
            yield conn.end_for(hub).rdma_write(10_000)
            done.append((tag, env.now))

        env.process(proc(c1, "one"))
        env.process(proc(c2, "two"))
        env.run()
        # Both flows share hub.tx: 20 kB at 1 B/ns total.
        assert done == [("one", 10_000), ("two", 20_000)]


class TestMessaging:
    def test_message_delivered_to_peer_inbox(self):
        env = Environment()
        _, _, _, conn = make_pair(env)

        def sender():
            yield conn.a.send({"op": "read"}, payload_bytes=0)

        def receiver():
            msg = yield conn.b.recv()
            return (env.now, msg)

        env.process(sender())
        t, msg = env.run(until=env.process(receiver()))
        assert msg == {"op": "read"}
        assert t == 192  # capsule bytes at 1 B/ns

    def test_in_order_delivery(self):
        env = Environment()
        _, _, _, conn = make_pair(env)
        received = []

        def sender():
            for i in range(5):
                conn.a.send(i, payload_bytes=1000)
            yield env.timeout(0)

        def receiver():
            for _ in range(5):
                msg = yield conn.b.recv()
                received.append(msg)

        env.process(sender())
        env.process(receiver())
        env.run()
        assert received == [0, 1, 2, 3, 4]

    def test_loopback_bypasses_nic(self):
        env = Environment()
        fabric = Fabric(env, loopback_ns=500, rdma_op_ns=0)
        nic = Nic(env, GB, name="solo")
        conn = fabric.connect(nic, nic)

        def proc():
            yield conn.a.rdma_write(1 << 20)
            return env.now

        assert env.run(until=env.process(proc())) == 500
        assert nic.tx_bytes == 0  # co-located: no wire traffic

    def test_end_for_unknown_nic_rejected(self):
        env = Environment()
        _, _, _, conn = make_pair(env)
        stranger = Nic(env, GB, name="stranger")
        with pytest.raises(ValueError):
            conn.end_for(stranger)


class TestNic:
    def test_available_bandwidth_decreases_with_backlog(self):
        env = Environment()
        nic = Nic(env, GB)
        full = nic.available_bandwidth(window_ns=1_000_000)
        nic.tx.reserve(500_000)  # 500 us of backlog
        half = nic.available_bandwidth(window_ns=1_000_000)
        assert half == pytest.approx(full * 0.5)

    def test_available_bandwidth_floors_at_zero(self):
        env = Environment()
        nic = Nic(env, GB)
        nic.tx.reserve(10_000_000)
        assert nic.available_bandwidth(window_ns=1_000_000) == 0.0

    def test_reset_accounting(self):
        env = Environment()
        nic = Nic(env, GB)
        nic.tx.reserve(100)
        nic.reset_accounting()
        assert nic.tx_bytes == 0
