"""Tests for the NVMe-oF target/initiator pair and cluster assembly."""

import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.nvmeof import IoError, NvmeOfTarget, RemoteBdev
from repro.sim import Environment


def make_stack(num_servers=2, functional=0, **kwargs):
    env = Environment()
    config = ClusterConfig(num_servers=num_servers, functional_capacity=functional, **kwargs)
    cluster = build_cluster(env, config)
    bdevs = []
    targets = []
    for i, server in enumerate(cluster.servers):
        conn = cluster.host_connection(i)
        targets.append(NvmeOfTarget(server, conn.end_for(server.nic)))
        bdevs.append(RemoteBdev(cluster.host, conn.end_for(cluster.host.nic), name=f"bdev{i}"))
    return env, cluster, bdevs, targets


class TestCluster:
    def test_paper_default_shape(self):
        env, cluster, bdevs, _targets = make_stack(num_servers=8)
        assert cluster.num_servers == 8
        assert len(cluster.host_connections) == 8
        # full server mesh: 8 choose 2
        assert len(cluster._peer_connections) == 28

    def test_peer_connection_symmetry(self):
        env, cluster, _, _t = make_stack(num_servers=3)
        assert cluster.peer_connection(0, 2) is cluster.peer_connection(2, 0)
        with pytest.raises(ValueError):
            cluster.peer_connection(1, 1)

    def test_heterogeneous_nic_rates(self):
        env = Environment()
        config = ClusterConfig(num_servers=2, server_nic_rates=[1e9, 2e9])
        cluster = build_cluster(env, config)
        assert cluster.servers[0].nic.rate_bytes_per_s == 1e9
        assert cluster.servers[1].nic.rate_bytes_per_s == 2e9

    def test_rate_list_length_checked(self):
        env = Environment()
        with pytest.raises(ValueError):
            build_cluster(env, ClusterConfig(num_servers=3, server_nic_rates=[1e9]))


class TestRemoteIo:
    def test_functional_write_read_roundtrip(self):
        env, cluster, bdevs, _targets = make_stack(functional=1 << 20)
        payload = bytes(range(200)) * 10

        def proc():
            yield bdevs[0].write(4096, 2000, payload)
            data = yield bdevs[0].read(4096, 2000)
            return bytes(data)

        assert env.run(until=env.process(proc())) == payload

    def test_read_times_include_network_and_drive(self):
        env, cluster, bdevs, _targets = make_stack()

        def proc():
            yield bdevs[0].read(0, 128 * 1024)
            return env.now

        elapsed = env.run(until=env.process(proc()))
        # capsule + cpu + drive read (~41us transfer + 80us latency) +
        # response transfer (~11.4us at 11.5GB/s) + fabric overheads
        assert 100_000 < elapsed < 250_000

    def test_write_pulls_data_through_host_tx(self):
        env, cluster, bdevs, _targets = make_stack()
        size = 256 * 1024

        def proc():
            yield bdevs[0].write(0, size)

        env.run(until=env.process(proc()))
        host_nic = cluster.host.nic
        # host TX carries capsule + payload; RX only the completion
        assert host_nic.tx_bytes >= size
        assert host_nic.rx_bytes < 1024

    def test_read_pushes_data_through_host_rx(self):
        env, cluster, bdevs, _targets = make_stack()
        size = 256 * 1024

        def proc():
            yield bdevs[0].read(0, size)

        env.run(until=env.process(proc()))
        assert cluster.host.nic.rx_bytes >= size
        assert cluster.host.nic.tx_bytes < 1024

    def test_failed_drive_returns_error(self):
        env, cluster, bdevs, _targets = make_stack()
        cluster.servers[0].drive.fail()

        def proc():
            try:
                yield bdevs[0].read(0, 4096)
            except IoError:
                return "io-error"

        assert env.run(until=env.process(proc())) == "io-error"

    def test_concurrent_ios_to_different_servers(self):
        env, cluster, bdevs, _targets = make_stack(num_servers=4)
        done = []

        def proc(i):
            yield bdevs[i].read(0, 512 * 1024)
            done.append(env.now)

        for i in range(4):
            env.process(proc(i))
        env.run()
        # All four reads proceed in parallel on different servers; host RX
        # serializes the 4 responses but drive work overlaps.
        assert len(done) == 4
        assert max(done) < 4 * min(done)

    def test_stall_injection_delays_service(self):
        env, cluster, bdevs, targets = make_stack()
        targets[1].stall_ns = 5_000_000

        def proc():
            yield bdevs[1].read(0, 4096)
            return env.now

        assert env.run(until=env.process(proc())) > 5_000_000

    def test_outstanding_tracking(self):
        env, cluster, bdevs, _targets = make_stack()

        def proc():
            ev = bdevs[0].read(0, 4096)
            assert bdevs[0].outstanding == 1
            yield ev
            assert bdevs[0].outstanding == 0

        env.run(until=env.process(proc()))
