"""Observability subsystem: span accounting, exports, sampling, determinism.

The load-bearing invariants:

* critical-path parts of every traced request sum *exactly* to its
  end-to-end latency (nanosecond-exact, no double counting);
* exported Chrome traces validate against the trace-event schema and are
  byte-identical across repeated runs and across worker-process fan-out;
* the bottleneck report names the resource the paper's analysis names;
* an unarmed cluster records nothing and takes no observability branches.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.experiments.common import build_array, traced_fio_point
from repro.experiments.runner import SweepPoint, run_points
from repro.obs import (
    ObservabilityConfig,
    Tracer,
    breakdown_table,
    chrome_trace_json,
    request_breakdowns,
    validate_chrome_trace,
)
from repro.metrics.report import Row, format_table
from repro.sim import Environment
from repro.workloads import FioWorkload

GOLDEN_TRACE = Path(__file__).parent / "golden" / "trace_draid_4k.json"

KB = 1024


def _traced_run(system: str, io_size: int = 4 * KB, read_fraction: float = 0.0,
                queue_depth: int = 2, measure_ns: int = 400_000, seed: int = 77):
    """A small, fast observability-armed FIO run; returns (fio, obs)."""
    array = build_array(system, observability=ObservabilityConfig())
    fio = FioWorkload(array, io_size, read_fraction=read_fraction,
                      queue_depth=queue_depth, seed=seed)
    fio.run(warmup_ns=100_000, measure_ns=measure_ns)
    return fio, array.cluster.obs


def small_trace_json(system: str = "dRAID") -> str:
    """Module-level so run_points can ship it across the process boundary."""
    _, obs = _traced_run(system)
    return chrome_trace_json(obs.tracer)


class TestCriticalPathAccounting:
    @pytest.mark.parametrize("system", ["Linux", "SPDK", "dRAID"])
    def test_parts_sum_exactly_to_latency(self, system):
        fio, obs = _traced_run(system)
        breakdowns = request_breakdowns(obs.tracer)
        assert breakdowns, "traced run produced no requests"
        for b in breakdowns:
            assert sum(b["parts"].values()) == b["duration_ns"]

    @pytest.mark.parametrize("system", ["Linux", "SPDK", "dRAID"])
    def test_roots_match_measured_latencies(self, system):
        measure_ns = 1_500_000
        fio, obs = _traced_run(system, measure_ns=measure_ns)
        window_end = 100_000 + measure_ns  # warmup + measurement, absolute ns
        roots = [s for s in obs.tracer.spans if s.cat == "request"]
        assert roots, "traced run recorded no request roots"
        in_window = sorted(
            s.duration_ns for s in roots if s.end_ns <= window_end
        )
        samples = sorted(fio.reads._samples + fio.writes._samples)
        # a root completing inside the window IS a measured latency sample;
        # samples may additionally cover I/Os submitted during warmup
        remaining = list(samples)
        for duration in in_window:
            assert duration in remaining
            remaining.remove(duration)

    def test_reads_and_writes_both_traced(self):
        fio, obs = _traced_run("dRAID", read_fraction=0.5)
        names = {s.name for s in obs.tracer.spans if s.cat == "request"}
        assert names == {"read", "write"}

    def test_breakdown_table_renders(self):
        _, obs = _traced_run("dRAID")
        table = breakdown_table(request_breakdowns(obs.tracer), limit=5)
        lines = table.splitlines()
        assert lines[0].split()[:3] == ["trace", "request", "total_us"]
        assert lines[-1].lstrip().startswith("mean")


class TestChromeTraceExport:
    def test_export_validates(self):
        _, obs = _traced_run("dRAID")
        trace = json.loads(chrome_trace_json(obs.tracer))
        validate_chrome_trace(trace)
        events = trace["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        tracks = {e["args"]["name"] for e in events if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "host.io" in tracks
        assert any(t.startswith("net.") for t in tracks)
        assert any(t.endswith(".nvme") for t in tracks)

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"no": "events"})
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace([{"ph": "X", "name": "x", "pid": 1, "tid": 1,
                                    "ts": -5, "dur": 1, "cat": "c"}])
        with pytest.raises(ValueError):
            validate_chrome_trace([{"ph": "Q", "name": "x", "pid": 1, "tid": 1}])

    def test_golden_trace(self):
        assert small_trace_json("dRAID") == GOLDEN_TRACE.read_text()

    def test_two_runs_byte_identical(self):
        assert small_trace_json("dRAID") == small_trace_json("dRAID")

    def test_parallel_workers_byte_identical(self):
        points = [SweepPoint(small_trace_json, dict(system="dRAID"))] * 2
        serial = run_points(points, jobs=1)
        parallel = run_points(points, jobs=2)
        assert serial == parallel
        assert serial[0] == serial[1]


class TestBottleneckReport:
    def test_md_large_read_is_host_nic_bound(self):
        _, obs = traced_fio_point("Linux", io_size=128 * KB, read_fraction=1.0,
                                  fast=True)
        assert obs.sampler.report().bottleneck == "host-nic"

    def test_draid_4k_write_is_drive_bound(self):
        _, obs = traced_fio_point("dRAID", io_size=4 * KB, fast=True)
        report = obs.sampler.report()
        assert report.bottleneck == "drive"
        assert report.utilization["host-nic"] < 0.5

    def test_report_render_and_idle(self):
        _, obs = _traced_run("dRAID")
        text = obs.sampler.report().render()
        assert "bottleneck:" in text and "drive" in text
        # a sampler that never ran reports idle
        env = Environment()
        cluster = build_cluster(env, ClusterConfig(
            observability=ObservabilityConfig()))
        assert cluster.obs.sampler.report().bottleneck == "idle"


class TestZeroCostDisabled:
    def test_unarmed_cluster_has_no_obs(self):
        env = Environment()
        cluster = build_cluster(env, ClusterConfig())
        assert cluster.obs is None

    def test_unarmed_run_records_nothing(self):
        array = build_array("dRAID")
        fio = FioWorkload(array, 4 * KB, queue_depth=2, seed=77)
        assert fio._tracer is None
        fio.run(warmup_ns=100_000, measure_ns=200_000)
        assert array.cluster.obs is None

    def test_armed_and_unarmed_results_identical(self):
        """Arming the tracer must not perturb the simulated outcome."""
        plain = build_array("dRAID")
        fio_plain = FioWorkload(plain, 4 * KB, queue_depth=2, seed=77)
        r1 = fio_plain.run(warmup_ns=100_000, measure_ns=400_000)
        armed = build_array("dRAID", observability=ObservabilityConfig())
        fio_armed = FioWorkload(armed, 4 * KB, queue_depth=2, seed=77)
        r2 = fio_armed.run(warmup_ns=100_000, measure_ns=400_000)
        assert r1 == r2


class TestTracerUnit:
    def test_derive_parents_envelope_before_record(self):
        tracer = Tracer()
        root = tracer.new_request()
        envelope = tracer.derive(root)
        tracer.record(envelope, "child", "disk", "s0.drive", 10, 20)
        tracer.record_at(envelope, "rpc", "rpc", "host", 5, 30)
        tracer.record_root(root, "write", "host.io", 0, 40)
        spans = {s.name: s for s in tracer.spans}
        assert spans["child"].parent_id == envelope.span_id
        assert spans["rpc"].span_id == envelope.span_id
        assert spans["rpc"].parent_id == root.span_id
        assert spans["write"].parent_id is None

    def test_zero_length_spans_dropped(self):
        tracer = Tracer()
        ctx = tracer.new_request()
        tracer.record(ctx, "noop", "compute", "host.cpu", 7, 7)
        tracer.record_at(tracer.derive(ctx), "noop", "rpc", "host", 9, 9)
        assert tracer.spans == []


class TestFormatTableAlignment:
    def test_small_table_layout_unchanged(self):
        rows = [Row(4, "dRAID", {"bandwidth_mb_s": 1234.5, "iops": 9.0})]
        expected = (
            "t\n"
            "=\n"
            f"{'x':>12} {'system':>10}{'bandwidth_mb_s':>16}{'iops':>16}\n"
            + "-" * 55 + "\n"
            f"{'4':>12} {'dRAID':>10}{'1234.5':>16}{'9.0':>16}"
        )
        assert format_table("t", rows) == expected

    def test_wide_cells_and_names_stay_aligned(self):
        rows = [
            Row("rd128K[host-nic]", "Linux",
                {"bandwidth_mb_s": 11490.6, "raid-thread-util": 0.0,
                 "a_metric_name_wider_than_sixteen": 123456789012345.6}),
            Row(8, "dRAID",
                {"bandwidth_mb_s": 3.0, "raid-thread-util": 1.0,
                 "a_metric_name_wider_than_sixteen": 1.0}),
        ]
        table = format_table("wide", rows)
        lines = table.splitlines()
        header, separator, first, second = lines[2], lines[3], lines[4], lines[5]
        assert len(header) == len(first) == len(second) == len(separator)
        # adjacent column headers never run together
        assert "utila_metric" not in header
        assert " a_metric_name_wider_than_sixteen" in header
        # right-aligned numeric cells end at the same offsets as headers
        assert first.endswith("123456789012345.6")
        assert second.endswith(f"{'1.0':>{len('a_metric_name_wider_than_sixteen') + 1}}")
