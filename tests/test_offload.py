"""Tests for the §7 offloaded host-side controller."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.draid.offload import OffloadedController, OffloadedDraidArray
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment
from repro.workloads import FioWorkload

KB = 1024
CHUNK = 16 * KB


def make_offloaded(servers=6, stripes=16, functional=True, controller=0):
    env = Environment()
    cluster = build_cluster(
        env,
        ClusterConfig(num_servers=servers,
                      functional_capacity=stripes * CHUNK if functional else 0),
    )
    geometry = RaidGeometry(RaidLevel.RAID5, servers - 1, CHUNK)
    array = OffloadedDraidArray(cluster, geometry, controller_server=controller)
    return env, cluster, array, geometry


class TestTopology:
    def test_geometry_must_leave_room_for_controller(self):
        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=6))
        with pytest.raises(ValueError):
            OffloadedController(cluster, RaidGeometry(RaidLevel.RAID5, 6, CHUNK), 0)

    def test_drive_to_server_mapping_skips_controller(self):
        env, cluster, array, geometry = make_offloaded(controller=2)
        controller = array.controller
        assert [controller._server_of(d) for d in range(5)] == [0, 1, 3, 4, 5]
        assert controller._drive_of(4) == 3
        with pytest.raises(ValueError):
            controller._drive_of(2)


class TestFunctional:
    def test_roundtrip_through_proxy(self):
        env, cluster, array, geometry = make_offloaded()
        rng = np.random.default_rng(0)
        blob = rng.integers(0, 256, 2 * geometry.stripe_data_bytes, dtype=np.uint8)
        env.run(until=array.write(0, len(blob), blob))
        data = env.run(until=array.read(0, len(blob)))
        assert np.array_equal(data, blob)

    def test_partial_writes_and_parity(self):
        env, cluster, array, geometry = make_offloaded()
        rng = np.random.default_rng(1)
        blob = rng.integers(0, 256, 3 * geometry.stripe_data_bytes, dtype=np.uint8)
        env.run(until=array.write(0, len(blob), blob))
        patch = rng.integers(0, 256, 5000, dtype=np.uint8)
        env.run(until=array.write(777, len(patch), patch))
        blob[777 : 777 + len(patch)] = patch
        data = env.run(until=array.read(0, len(blob)))
        assert np.array_equal(data, blob)
        assert array.stats.rmw_writes >= 1

    def test_degraded_read_through_proxy(self):
        env, cluster, array, geometry = make_offloaded()
        rng = np.random.default_rng(2)
        blob = rng.integers(0, 256, 2 * geometry.stripe_data_bytes, dtype=np.uint8)
        env.run(until=array.write(0, len(blob), blob))
        array.fail_drive(0)
        data = env.run(until=array.read(0, len(blob)))
        assert np.array_equal(data, blob)
        assert array.degraded

    def test_random_workload(self):
        env, cluster, array, geometry = make_offloaded(stripes=24)
        rng = np.random.default_rng(3)
        capacity = 24 * geometry.stripe_data_bytes
        model = np.zeros(capacity, dtype=np.uint8)
        for _ in range(20):
            size = int(rng.integers(1, 2 * geometry.stripe_data_bytes))
            offset = int(rng.integers(0, capacity - size))
            if rng.random() < 0.4:
                data = env.run(until=array.read(offset, size))
                assert np.array_equal(data, model[offset : offset + size])
            else:
                payload = rng.integers(0, 256, size, dtype=np.uint8)
                env.run(until=array.write(offset, size, payload))
                model[offset : offset + size] = payload


class TestTradeoffs:
    def test_host_resources_nearly_idle(self):
        """§7: 'a full offloading further reduces resource usage on the
        host side' — host CPU does ~nothing; the controller's core works."""
        env, cluster, array, geometry = make_offloaded(functional=False)
        fio = FioWorkload(array, 32 * KB, read_fraction=0.0, queue_depth=8)
        fio.run(measure_ns=10_000_000)
        host_busy = sum(core.busy_ns for core in cluster.host.cores)
        controller_busy = cluster.servers[0].cpu.busy_ns
        assert host_busy < controller_busy / 10

    def test_extra_hop_costs_latency(self):
        """§7: offloading 'may slightly increase the latency with another
        NVMe-oF abstraction layer and additional I/O overlay'."""

        def write_latency(offloaded: bool) -> float:
            env = Environment()
            if offloaded:
                cluster = build_cluster(env, ClusterConfig(num_servers=6))
                array = OffloadedDraidArray(
                    cluster, RaidGeometry(RaidLevel.RAID5, 5, CHUNK)
                )
            else:
                cluster = build_cluster(env, ClusterConfig(num_servers=5))
                array = DraidArray(cluster, RaidGeometry(RaidLevel.RAID5, 5, CHUNK))
            fio = FioWorkload(array, 32 * KB, read_fraction=0.0, queue_depth=1)
            return fio.run(measure_ns=10_000_000).latency.mean_ns

        direct = write_latency(offloaded=False)
        offloaded = write_latency(offloaded=True)
        assert offloaded > direct * 1.05
        assert offloaded < direct * 2.0  # "slightly" — not catastrophically

    def test_write_payload_hops_through_controller(self):
        env, cluster, array, geometry = make_offloaded(functional=False)
        cluster.reset_accounting()
        size = 32 * KB
        env.run(until=array.write(0, size))
        controller_nic = cluster.servers[0].nic
        # the payload entered the controller (host->controller) and left it
        # again (controller->data bdev): the §7 "additional I/O overlay"
        assert controller_nic.rx_bytes >= size
        assert controller_nic.tx_bytes >= size
