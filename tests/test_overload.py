"""Overload-control subsystem tests: admission, deadlines, budgets, breakers.

Covers the synchronous primitives (:mod:`repro.qos`), the bounded NVMe-oF
target queue (including the unbounded-when-unset regression), the
controller-level admission/deadline behavior on a real cluster, and the
open-loop workload's accounting.  The committed overload smoke golden is
checked byte-for-byte at the end, same as the chaos/integrity smokes.
"""

import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.nvmeof import NvmeOfTarget, RemoteBdev
from repro.nvmeof.messages import IoError
from repro.qos import (
    AdmissionQueue,
    Busy,
    CircuitBreaker,
    DeadlineExceeded,
    OverloadConfig,
    PRIORITY_BACKGROUND,
    QosControl,
    RetryBudget,
)
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment

KB = 1024
MS = 1_000_000


def build_md(num_servers=4, overload=None, chunk=64 * KB, **cluster_kwargs):
    from repro.baselines import MdRaid

    env = Environment()
    config = ClusterConfig(
        num_servers=num_servers, overload=overload, **cluster_kwargs
    )
    cluster = build_cluster(env, config)
    geometry = RaidGeometry(RaidLevel.RAID5, num_servers, chunk)
    return env, MdRaid(cluster, geometry)


class TestTypedErrors:
    def test_busy_and_deadline_are_io_errors(self):
        """Pre-existing ``except IoError`` sites must keep catching the
        typed overload rejections — arming never un-handles a failure."""
        assert issubclass(Busy, IoError)
        assert issubclass(DeadlineExceeded, IoError)
        assert not issubclass(Busy, DeadlineExceeded)


class TestAdmissionQueue:
    def test_foreground_bound(self):
        q = AdmissionQueue(depth=2)
        assert q.try_admit() and q.try_admit()
        assert not q.try_admit()
        assert q.rejected == 1
        q.release()
        assert q.try_admit()

    def test_background_sheds_at_lower_watermark(self):
        q = AdmissionQueue(depth=4, background_depth=2)
        assert q.try_admit(PRIORITY_BACKGROUND)
        assert q.try_admit(PRIORITY_BACKGROUND)
        # background full at 2, foreground still has room
        assert not q.try_admit(PRIORITY_BACKGROUND)
        assert q.shed_background == 1 and q.rejected == 0
        assert q.try_admit()
        assert q.under_pressure

    def test_default_background_watermark_is_half(self):
        assert AdmissionQueue(depth=8).background_depth == 4
        assert AdmissionQueue(depth=1).background_depth == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(depth=0)
        with pytest.raises(ValueError):
            AdmissionQueue(depth=4, background_depth=5)
        with pytest.raises(ValueError):
            AdmissionQueue(depth=4, background_depth=0)
        q = AdmissionQueue(depth=1)
        with pytest.raises(RuntimeError):
            q.release()


class TestRetryBudget:
    def test_retries_are_a_tax_on_successes(self):
        budget = RetryBudget(deposit_ratio=0.5, burst=2.0)
        assert budget.try_spend() and budget.try_spend()
        # bucket dry: denials until successes deposit enough
        assert not budget.try_spend()
        assert budget.denied == 1
        budget.note_success()
        assert not budget.try_spend()  # 0.5 token is not a whole token
        budget.note_success()
        assert budget.try_spend()
        assert budget.granted == 3

    def test_deposits_saturate_at_burst(self):
        budget = RetryBudget(deposit_ratio=1.0, burst=3.0)
        for _ in range(10):
            budget.note_success()
        assert budget.tokens == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(deposit_ratio=-0.1)
        with pytest.raises(ValueError):
            RetryBudget(burst=0.5)


class TestCircuitBreaker:
    def test_trips_only_after_warmup_and_threshold(self):
        breaker = CircuitBreaker(threshold=0.5, alpha=0.5, min_samples=4)
        for _ in range(3):
            breaker.record(0, ok=False)
        assert not breaker.should_trip(0, now_ns=0)  # warming up
        breaker.record(0, ok=False)
        assert breaker.failure_rate(0) > 0.5
        assert breaker.should_trip(0, now_ns=0)

    def test_healthy_member_never_trips(self):
        breaker = CircuitBreaker(threshold=0.5, min_samples=2)
        for _ in range(100):
            breaker.record(1, ok=True)
        assert not breaker.should_trip(1, now_ns=0)
        assert breaker.failure_rate(1) == 0.0

    def test_cooldown_rate_limits_trips(self):
        breaker = CircuitBreaker(
            threshold=0.1, alpha=1.0, min_samples=1, cooldown_ns=1000
        )
        breaker.record(0, ok=False)
        assert breaker.should_trip(0, now_ns=0)
        breaker.note_trip(0, now_ns=0)
        breaker.record(1, ok=False)
        assert not breaker.should_trip(1, now_ns=500)  # inside cooldown
        assert breaker.should_trip(1, now_ns=1000)

    def test_trip_resets_member_state(self):
        breaker = CircuitBreaker(threshold=0.1, alpha=1.0, min_samples=1)
        breaker.record(0, ok=False)
        breaker.note_trip(0, now_ns=0)
        assert breaker.failure_rate(0) == 0.0
        assert breaker.trips == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(alpha=1.5)
        with pytest.raises(ValueError):
            CircuitBreaker(min_samples=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_ns=-1)


class TestQosControl:
    def test_all_knobs_default_disarmed(self):
        control = QosControl(OverloadConfig())
        assert control.admission is None
        assert control.retry_budget is None
        assert control.breaker is None
        assert not control.under_pressure

    def test_knobs_arm_independently(self):
        control = QosControl(OverloadConfig(admission_depth=8))
        assert control.admission is not None and control.retry_budget is None
        control = QosControl(OverloadConfig(retry_deposit_ratio=0.1))
        assert control.retry_budget is not None and control.admission is None
        control = QosControl(OverloadConfig(breaker_threshold=0.5))
        assert control.breaker is not None

    def test_stats_summary_line_is_stable(self):
        control = QosControl(OverloadConfig())
        assert control.stats.summary() == (
            "busy=0 shed_bg=0 deadline=0 retries_denied=0 breaker_trips=0"
        )

    def test_cluster_slot_disarmed_by_default(self):
        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=2))
        assert cluster.qos is None

    def test_cluster_slot_armed_by_config(self):
        env = Environment()
        cluster = build_cluster(
            env,
            ClusterConfig(num_servers=2, overload=OverloadConfig(admission_depth=4)),
        )
        assert cluster.qos is not None
        assert cluster.qos.admission.depth == 4


class TestTargetQueueBound:
    def _stack(self, queue_depth):
        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=1))
        server = cluster.servers[0]
        conn = cluster.host_connection(0)
        target = NvmeOfTarget(
            server, conn.end_for(server.nic), queue_depth=queue_depth
        )
        bdev = RemoteBdev(cluster.host, conn.end_for(cluster.host.nic), name="bdev")
        return env, target, bdev

    def test_unset_queue_depth_stays_unbounded(self):
        """Regression: the historic target accepted arbitrarily many
        concurrent commands; leaving the knob unset must preserve that."""
        env, target, bdev = self._stack(queue_depth=None)
        outcomes = []

        def one(i):
            yield bdev.read(i * 4096, 4096)
            outcomes.append(i)

        def driver():
            for i in range(256):
                env.process(one(i), name=f"io{i}")
            yield env.timeout(0)

        env.process(driver(), name="driver")
        env.run()
        assert len(outcomes) == 256
        assert target.busy_rejections == 0
        assert target.commands_served == 256

    def test_bounded_target_fast_rejects_with_busy(self):
        env, target, bdev = self._stack(queue_depth=4)
        results = []

        def one(i):
            try:
                yield bdev.read(i * 4096, 64 * KB)
            except Busy:
                results.append("busy")
            else:
                results.append("ok")

        def driver():
            for i in range(64):
                env.process(one(i), name=f"io{i}")
            yield env.timeout(0)

        env.process(driver(), name="driver")
        env.run()
        assert results.count("busy") == target.busy_rejections > 0
        assert results.count("ok") == target.commands_served
        assert len(results) == 64
        # bound respected: nothing left in service afterwards
        assert target.inflight == 0

    def test_stale_command_fast_failed_at_dequeue(self):
        env, target, bdev = self._stack(queue_depth=8)
        caught = []

        def driver():
            # deadline already in the past when the capsule is parsed
            try:
                yield bdev.read(0, 4096, deadline_ns=1)
            except DeadlineExceeded:
                caught.append("deadline")

        def clock():
            yield env.timeout(10)

        env.process(clock(), name="clock")
        env.process(driver(), name="driver")
        env.run()
        assert caught == ["deadline"]
        assert target.deadline_rejections == 1

    def test_queue_depth_validated(self):
        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=1))
        server = cluster.servers[0]
        conn = cluster.host_connection(0)
        with pytest.raises(ValueError):
            NvmeOfTarget(server, conn.end_for(server.nic), queue_depth=0)


class TestControllerAdmission:
    def test_admission_full_raises_busy(self):
        env, array = build_md(overload=OverloadConfig(admission_depth=1))
        outcomes = []

        def one(i):
            try:
                yield array.read(i * 64 * KB, 64 * KB)
            except Busy:
                outcomes.append("busy")
            else:
                outcomes.append("ok")

        def driver():
            for i in range(8):
                env.process(one(i), name=f"io{i}")
            yield env.timeout(0)

        env.process(driver(), name="driver")
        env.run()
        # depth 1: exactly one of the simultaneous arrivals is admitted
        assert outcomes.count("ok") == 1
        assert outcomes.count("busy") == 7
        assert array.qos.stats.busy_rejections == 7
        assert array.qos.admission.inflight == 0

    def test_background_priority_shed_under_pressure(self):
        env, array = build_md(
            overload=OverloadConfig(admission_depth=4, background_depth=1)
        )
        outcomes = []

        def one(i, priority):
            try:
                yield array.read(i * 64 * KB, 64 * KB, priority=priority)
            except Busy:
                outcomes.append((priority, "busy"))
            else:
                outcomes.append((priority, "ok"))

        def driver():
            env.process(one(0, "bg"), name="bg0")
            env.process(one(1, "bg"), name="bg1")
            env.process(one(2, "fg"), name="fg0")
            yield env.timeout(0)

        env.process(driver(), name="driver")
        env.run()
        # first bg admitted, second shed at the low watermark, fg still fits
        assert ("bg", "ok") in outcomes and ("bg", "busy") in outcomes
        assert ("fg", "ok") in outcomes
        assert array.qos.stats.shed_background == 1
        assert array.qos.stats.busy_rejections == 0

    def test_default_deadline_stamped_and_terminal(self):
        """An impossibly small default deadline makes every I/O fail with
        the typed terminal error and bumps the deadline counter."""
        env, array = build_md(
            overload=OverloadConfig(default_deadline_ns=1), chunk=64 * KB
        )
        caught = []

        def driver():
            try:
                yield array.read(0, 64 * KB)
            except DeadlineExceeded:
                caught.append("read")
            try:
                yield array.write(0, 64 * KB)
            except DeadlineExceeded:
                caught.append("write")

        env.process(driver(), name="driver")
        env.run()
        assert caught == ["read", "write"]
        # the stale commands were shed at the targets, not serviced
        assert sum(t.deadline_rejections for t in array.targets) >= 2

    def test_explicit_deadline_overrides_default(self):
        env, array = build_md(
            overload=OverloadConfig(default_deadline_ns=1)
        )
        done = []

        def driver():
            # a generous explicit deadline wins over the tiny default
            yield array.read(0, 64 * KB, deadline_ns=env.now + 1_000 * MS)
            done.append("ok")

        env.process(driver(), name="driver")
        env.run()
        assert done == ["ok"]

    def test_disarmed_array_ignores_qos_kwargs(self):
        """deadline_ns/priority on an unarmed array are inert — the
        historic datapath is taken and the I/O completes normally."""
        env, array = build_md(overload=None)
        assert array.qos is None
        done = []

        def driver():
            yield array.read(0, 64 * KB, priority="bg")
            done.append("ok")

        env.process(driver(), name="driver")
        env.run()
        assert done == ["ok"]


class TestBreakerEjection:
    def test_error_storm_trips_member_within_parity_headroom(self):
        env, array = build_md(
            num_servers=4,
            overload=OverloadConfig(
                breaker_threshold=0.5,
                breaker_alpha=0.5,
                breaker_min_samples=4,
                breaker_cooldown_ns=0,
            ),
        )
        # fail a member's drive silently (no controller fencing): every
        # command to it completes with an error, feeding the breaker
        array.cluster.servers[1].drive.fail()
        stripe_bytes = array.geometry.stripe_data_bytes

        def driver():
            for i in range(12):
                try:
                    yield array.read(i * stripe_bytes, stripe_bytes)
                except IoError:
                    pass

        env.process(driver(), name="driver")
        env.run()
        assert array.qos.stats.breaker_trips == 1
        assert 1 in array.failed

    def test_breaker_never_trips_past_parity(self):
        env, array = build_md(
            num_servers=4,
            overload=OverloadConfig(
                breaker_threshold=0.3,
                breaker_alpha=1.0,
                breaker_min_samples=1,
                breaker_cooldown_ns=0,
            ),
        )
        # RAID-5 tolerates one loss; member 0 is already fenced
        array.fail_drive(0)
        array.cluster.servers[1].drive.fail()
        stripe_bytes = array.geometry.stripe_data_bytes

        def driver():
            for i in range(8):
                try:
                    yield array.read(i * stripe_bytes, stripe_bytes)
                except IoError:
                    pass

        env.process(driver(), name="driver")
        env.run()
        # the sick member keeps erroring but is never ejected: that would
        # exceed RAID-5's single-failure tolerance
        assert array.qos.stats.breaker_trips == 0
        assert array.failed == {0}


class TestOpenLoopWorkload:
    def test_validation(self):
        from repro.workloads import OpenLoopWorkload

        _, array = build_md()
        with pytest.raises(ValueError):
            OpenLoopWorkload(array, 0, rate_iops=1000)
        with pytest.raises(ValueError):
            OpenLoopWorkload(array, 4096, rate_iops=0)
        with pytest.raises(ValueError):
            OpenLoopWorkload(array, 4096, rate_iops=1000, read_fraction=1.5)
        with pytest.raises(ValueError):
            OpenLoopWorkload(array, 4096, rate_iops=1000, arrival="weird")
        with pytest.raises(ValueError):
            OpenLoopWorkload(
                array, 4096, rate_iops=1000, arrival="bursty", burst_duty=0.0
            )

    def test_accounting_consistent_on_disarmed_array(self):
        from repro.workloads import OpenLoopWorkload

        _, array = build_md()
        workload = OpenLoopWorkload(
            array, 64 * KB, rate_iops=20_000, read_fraction=0.5, seed=7
        )
        result = workload.run(warmup_ns=1 * MS, measure_ns=5 * MS)
        assert result.ops_offered > 0
        total = (
            result.ops_completed
            + result.busy_rejections
            + result.deadline_failures
            + result.io_errors
        )
        # every offered op resolves by the end of the drain window
        assert total == result.ops_offered
        # no deadline configured: nothing can be late, all completions good
        assert result.late_completions == 0
        assert result.ops_good == result.ops_completed
        assert result.busy_rejections == 0 and result.deadline_failures == 0
        assert result.goodput_mb_s <= result.throughput_mb_s <= result.offered_mb_s * 1.01

    def test_goodput_counts_only_within_budget(self):
        from repro.workloads import OpenLoopWorkload

        _, array = build_md()
        # unarmed array + explicit budget: late completions are counted
        # late by the workload even though the datapath never sheds
        workload = OpenLoopWorkload(
            array, 64 * KB, rate_iops=120_000, seed=7, deadline_ns=300_000
        )
        result = workload.run(warmup_ns=1 * MS, measure_ns=5 * MS)
        assert result.ops_good + result.late_completions == result.ops_completed
        assert result.goodput_fraction <= 1.0

    def test_bursty_clock_preserves_mean_rate(self):
        from repro.workloads import OpenLoopWorkload

        _, array = build_md()
        poisson = OpenLoopWorkload(array, 4 * KB, rate_iops=50_000, seed=11)
        rate0 = poisson._current_rate()
        assert rate0 == 50_000
        bursty = OpenLoopWorkload(
            array,
            4 * KB,
            rate_iops=50_000,
            seed=11,
            arrival="bursty",
            burst_factor=4.0,
            burst_period_ns=1_000_000,
            burst_duty=0.25,
        )
        on = 50_000 * 4.0
        off = 50_000 * (1.0 - 0.25 * 4.0) / (1.0 - 0.25)
        mean = 0.25 * on + 0.75 * max(off, 0.05 * 50_000)
        assert mean == pytest.approx(50_000, rel=0.05)


class TestBackgroundDaemonShedding:
    def _armed_functional(self, stripes=8):
        env, array = build_md(
            overload=OverloadConfig(admission_depth=8, background_depth=2),
            chunk=16 * KB,
            functional_capacity=8 * 16 * KB,
        )
        return env, array

    def _pressurize(self, array):
        """Occupy the admission queue up to the background watermark."""
        while not array.qos.admission.under_pressure:
            assert array.qos.admission.try_admit()

    def test_scrub_daemon_sheds_under_pressure(self):
        from repro.raid.scrubber import ScrubDaemon
        from repro.storage.integrity import IntegrityStore

        env, array = self._armed_functional()
        IntegrityStore(array.geometry.chunk_bytes).attach(array.cluster)
        self._pressurize(array)
        daemon = ScrubDaemon(array, num_stripes=4, pressure_pause_ns=100_000)
        env.run(until=daemon.process)
        assert daemon.pressure_sheds == 4
        assert array.qos.stats.shed_background == 4
        assert daemon.reports[0].stripes_scanned == 4

    def test_scrub_daemon_unaffected_when_disarmed(self):
        from repro.raid.scrubber import ScrubDaemon
        from repro.storage.integrity import IntegrityStore

        env, array = build_md(
            chunk=16 * KB, functional_capacity=8 * 16 * KB
        )
        IntegrityStore(array.geometry.chunk_bytes).attach(array.cluster)
        daemon = ScrubDaemon(array, num_stripes=4)
        env.run(until=daemon.process)
        assert daemon.pressure_sheds == 0

    def test_recovery_pacing_sheds_under_pressure(self):
        from repro.raid.recovery import RecoveryOrchestrator

        env, array = self._armed_functional()
        self._pressurize(array)
        orch = RecoveryOrchestrator(
            array, num_stripes=4, pressure_pause_ns=100_000
        )
        array.fail_drive(1)
        env.run(until=orch.request_rebuild(1))
        assert orch.stats.pressure_sheds > 0
        assert array.qos.stats.shed_background >= orch.stats.pressure_sheds
        assert not array.failed


def _load_smoke_module():
    import importlib.util
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    spec = importlib.util.spec_from_file_location(
        "overload_smoke", root / "scripts" / "overload_smoke.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module, root / "tests" / "golden" / "overload_smoke.golden"


def test_overload_smoke_matches_committed_golden():
    """The CI golden must track the datapath: regenerate it with
    ``python scripts/overload_smoke.py --write-golden`` on deliberate
    change.  ``smoke_report`` itself enforces the collapse / retention /
    metastability invariants, so a passing match re-proves the figure's
    headline claims."""
    module, golden = _load_smoke_module()
    assert module.smoke_report() == golden.read_text()
