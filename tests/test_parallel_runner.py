"""Parallel sweep executor: determinism and plumbing.

The load-bearing property is that fanning sweep points over worker
processes yields *byte-identical* rows to the serial path, because every
point owns its own Environment and seed.  These tests pin that for two
figure sweeps (the acceptance bar) plus seed stability of a single point.
"""

import os
from unittest import mock

import pytest

from repro.experiments import fio_figures
from repro.experiments.common import fio_point
from repro.experiments.runner import (
    JOBS_ENV_VAR,
    SweepPoint,
    SweepSpec,
    resolve_jobs,
    run_points,
)
from repro.metrics.report import Row
from repro.raid.geometry import RaidLevel


def _double(x):
    return x * 2


def _make_row(x, system):
    return Row(x=x, system=system, metrics={"v": float(x)})


class TestRunPoints:
    def test_serial_path_preserves_order(self):
        points = [SweepPoint(_double, dict(x=i)) for i in range(5)]
        assert run_points(points, jobs=1) == [0, 2, 4, 6, 8]

    def test_parallel_path_preserves_order(self):
        points = [SweepPoint(_double, dict(x=i)) for i in range(7)]
        assert run_points(points, jobs=3) == [i * 2 for i in range(7)]

    def test_rows_cross_process_boundary(self):
        points = [SweepPoint(_make_row, dict(x=i, system="s")) for i in range(4)]
        rows = run_points(points, jobs=2)
        assert rows == [_make_row(i, "s") for i in range(4)]

    def test_empty_points(self):
        assert run_points([], jobs=4) == []

    def test_single_point_runs_in_process(self):
        assert run_points([SweepPoint(_double, dict(x=21))], jobs=8) == [42]

    def test_sweep_spec_wrapper(self):
        spec = SweepSpec("demo", tuple(SweepPoint(_double, dict(x=i)) for i in range(3)))
        assert spec.run(jobs=1) == [0, 2, 4]


class TestResolveJobs:
    def test_explicit_wins(self):
        with mock.patch.dict(os.environ, {JOBS_ENV_VAR: "7"}):
            assert resolve_jobs(3) == 3

    def test_env_var(self):
        with mock.patch.dict(os.environ, {JOBS_ENV_VAR: "5"}):
            assert resolve_jobs() == 5

    def test_default_is_cpu_count(self):
        with mock.patch.dict(os.environ, {}, clear=False):
            os.environ.pop(JOBS_ENV_VAR, None)
            assert resolve_jobs() == (os.cpu_count() or 1)

    def test_capped_by_point_count(self):
        assert resolve_jobs(16, num_points=3) == 3

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)
        with mock.patch.dict(os.environ, {JOBS_ENV_VAR: "banana"}):
            with pytest.raises(ValueError):
                resolve_jobs()


class TestSweepDeterminism:
    """REPRO_JOBS=1 and REPRO_JOBS=4 must produce identical Row lists."""

    def _assert_rows_identical(self, serial, parallel):
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.x == b.x
            assert a.system == b.system
            assert set(a.metrics) == set(b.metrics)
            for key in a.metrics:
                # bit-for-bit, not approx: parallelism must be exact
                assert a.metrics[key] == b.metrics[key], (a.x, a.system, key)

    def test_io_size_sweep_parallel_identical(self):
        kwargs = dict(
            level=RaidLevel.RAID5,
            read_fraction=0.0,
            sizes_kb=[4, 128],
            servers=4,
            systems=("SPDK", "dRAID"),
            fast=True,
        )
        serial = fio_figures.sweep_io_size(jobs=1, **kwargs)
        parallel = fio_figures.sweep_io_size(jobs=4, **kwargs)
        self._assert_rows_identical(serial, parallel)

    def test_read_ratio_sweep_parallel_identical(self):
        kwargs = dict(
            level=RaidLevel.RAID5,
            ratios=[0.0, 1.0],
            systems=("dRAID",),
            fast=True,
        )
        serial = fio_figures.sweep_read_ratio(jobs=1, **kwargs)
        parallel = fio_figures.sweep_read_ratio(jobs=4, **kwargs)
        self._assert_rows_identical(serial, parallel)

    def test_jobs_env_var_drives_sweeps(self):
        kwargs = dict(
            level=RaidLevel.RAID5,
            ratios=[1.0],
            systems=("dRAID",),
            fast=True,
        )
        with mock.patch.dict(os.environ, {JOBS_ENV_VAR: "2"}):
            via_env = fio_figures.sweep_read_ratio(**kwargs)
        explicit = fio_figures.sweep_read_ratio(jobs=1, **kwargs)
        self._assert_rows_identical(explicit, via_env)


class TestSeedStability:
    def test_fio_point_two_serial_runs_match_exactly(self):
        kwargs = dict(servers=4, queue_depth=8, fast=True, seed=1234)
        a = fio_point("dRAID", **kwargs)
        b = fio_point("dRAID", **kwargs)
        assert a.bandwidth_mb_s == b.bandwidth_mb_s
        assert a.iops == b.iops
        assert a.ops_completed == b.ops_completed
        assert a.measured_ns == b.measured_ns
        assert a.latency == b.latency

    def test_different_seeds_differ(self):
        kwargs = dict(servers=4, queue_depth=8, fast=True)
        a = fio_point("dRAID", seed=1, **kwargs)
        b = fio_point("dRAID", seed=2, **kwargs)
        # same workload shape, different offsets: latencies should differ
        assert a.latency != b.latency
