"""Property-based tests of the GCRA token bucket (§5.5 QoS).

The token bucket is the rate-limiting primitive under both tenant QoS
(:class:`~repro.qos.tokens.RateLimitedDevice`) and the overload figure's
admission math, so these properties pin down the guarantees everything
above it assumes: the admitted byte rate never exceeds the configured
budget (beyond the burst allowance), the burst allowance itself is a hard
cap on how far a tenant runs ahead, admission is FIFO, and a canceled
``acquire`` + ``refund`` pair can only leave the bucket *more*
conservative — cancel storms never mint extra credit.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qos.tokens import NS_PER_S, TokenBucket
from repro.sim import Environment

#: request sizes in bytes (kept modest so schedules stay fast to simulate)
SIZES = st.integers(1, 64 * 1024)


def _drive(env, bucket, schedule):
    """Submit (gap_ns, nbytes) pairs; return [(fire_time, nbytes)] in
    completion order."""
    completions = []

    def submitter():
        for gap, nbytes in schedule:
            if gap:
                yield env.timeout(gap)
            event = bucket.acquire(nbytes)
            env.process(waiter(event, nbytes), name="tb.wait")
        # keep the submitter a generator even for empty schedules
        yield env.timeout(0)

    def waiter(event, nbytes):
        yield event
        completions.append((env.now, nbytes))

    env.process(submitter(), name="tb.submit")
    env.run()
    return completions


class TestRateBound:
    @given(
        schedule=st.lists(
            st.tuples(st.integers(0, 50_000), SIZES), min_size=1, max_size=40
        ),
        rate_mb=st.integers(1, 2_000),
        burst=st.integers(4 * 1024, 4 * 1024 * 1024),
    )
    @settings(max_examples=80, deadline=None)
    def test_admitted_bytes_bounded_by_budget(self, schedule, rate_mb, burst):
        """At any completion instant T, bytes conformed by T never exceed
        burst + rate * T (plus one request of integer-rounding slack)."""
        env = Environment()
        rate = rate_mb * 1_000_000
        bucket = TokenBucket(env, rate_bytes_per_s=rate, burst_bytes=burst)
        completions = _drive(env, bucket, schedule)
        assert len(completions) == len(schedule)
        conformed = 0
        max_size = max(nbytes for _, nbytes in schedule)
        for fired_at, nbytes in completions:
            conformed += nbytes
            budget = burst + rate * fired_at / NS_PER_S
            # one request of slack absorbs the int() rounding in _cost_ns
            assert conformed <= budget + max_size + 1

    @given(
        sizes=st.lists(SIZES, min_size=1, max_size=40),
        rate_mb=st.integers(1, 2_000),
        burst=st.integers(4 * 1024, 4 * 1024 * 1024),
    )
    @settings(max_examples=80, deadline=None)
    def test_burst_caps_instant_admission(self, sizes, rate_mb, burst):
        """Zero-delay admissions at t=0 never exceed the bucket depth
        (plus the single request that straddles the boundary)."""
        env = Environment()
        bucket = TokenBucket(
            env, rate_bytes_per_s=rate_mb * 1_000_000, burst_bytes=burst
        )
        instant = 0
        for nbytes in sizes:
            event = bucket.acquire(nbytes)
            if event.delay == 0:
                instant += nbytes
        # the last instant admission may straddle the burst boundary, but
        # everything after it must be delayed
        assert instant <= burst + max(sizes)

    def test_sustained_rate_converges(self):
        """A long back-to-back run admits at the configured rate: the last
        completion lands at ~ total_bytes / rate, regardless of burst."""
        env = Environment()
        rate = 100_000_000  # 100 MB/s
        bucket = TokenBucket(env, rate_bytes_per_s=rate, burst_bytes=64 * 1024)
        total = 0
        schedule = []
        for _ in range(200):
            schedule.append((0, 32 * 1024))
            total += 32 * 1024
        completions = _drive(env, bucket, schedule)
        last = max(t for t, _ in completions)
        ideal = (total - bucket.burst_bytes) * NS_PER_S / rate
        assert ideal * 0.99 <= last <= ideal * 1.01


class TestFifoOrder:
    @given(
        schedule=st.lists(
            st.tuples(st.integers(0, 20_000), SIZES), min_size=2, max_size=30
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_completion_order_matches_submission_order(self, schedule):
        """GCRA delays are monotone in submission order and the kernel
        breaks ties by event id, so admission is FIFO."""
        env = Environment()
        bucket = TokenBucket(
            env, rate_bytes_per_s=50_000_000, burst_bytes=16 * 1024
        )
        order = []

        def submitter():
            for i, (gap, nbytes) in enumerate(schedule):
                if gap:
                    yield env.timeout(gap)
                env.process(waiter(bucket.acquire(nbytes), i), name="tb.wait")
            yield env.timeout(0)

        def waiter(event, index):
            yield event
            order.append(index)

        env.process(submitter(), name="tb.submit")
        env.run()
        assert order == sorted(order)


class TestRefundConservatism:
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(0, 10_000), SIZES),
            min_size=1,
            max_size=40,
        ),
        rate_mb=st.integers(1, 500),
        burst=st.integers(4 * 1024, 1 * 1024 * 1024),
    )
    @settings(max_examples=80, deadline=None)
    def test_cancel_pairs_never_mint_credit(self, ops, rate_mb, burst):
        """A bucket that additionally sees acquire+refund (cancel) pairs is
        never *more* permissive than one that saw only the kept requests:
        its virtual arrival time stays >= the clean bucket's, so every
        subsequent request waits at least as long."""
        env = Environment()
        rate = rate_mb * 1_000_000
        noisy = TokenBucket(env, rate_bytes_per_s=rate, burst_bytes=burst)
        clean = TokenBucket(env, rate_bytes_per_s=rate, burst_bytes=burst)

        def driver():
            for canceled, gap, nbytes in ops:
                if gap:
                    yield env.timeout(gap)
                noisy.acquire(nbytes)
                if canceled:
                    # cancel immediately: hand the bytes back
                    noisy.refund(nbytes)
                else:
                    clean.acquire(nbytes)
                assert noisy._tat >= clean._tat

        env.process(driver(), name="tb.cancel")
        env.run()
        kept = sum(nbytes for canceled, _, nbytes in ops if not canceled)
        assert clean.admitted_bytes == kept

    @given(gap=st.integers(0, 100_000), nbytes=SIZES)
    @settings(max_examples=60, deadline=None)
    def test_refund_never_rolls_behind_now(self, gap, nbytes):
        """refund() floors the virtual arrival time at the current clock —
        rolling behind `now` would retroactively grant burst credit."""
        env = Environment()
        bucket = TokenBucket(env, rate_bytes_per_s=10_000_000, burst_bytes=8192)

        def driver():
            bucket.acquire(nbytes)
            if gap:
                yield env.timeout(gap)
            bucket.refund(nbytes)
            assert bucket._tat >= env.now
            yield env.timeout(0)

        env.process(driver(), name="tb.refund")
        env.run()

    def test_refund_restores_full_credit_when_immediate(self):
        """An immediate cancel of a fully-future reservation restores the
        exact cost, so the *next* request sees the pre-acquire state."""
        env = Environment()
        bucket = TokenBucket(env, rate_bytes_per_s=1_000_000, burst_bytes=4096)
        # exhaust the burst so _tat is well ahead of now
        bucket.acquire(4096)
        before = bucket._tat
        bucket.acquire(2048)
        bucket.refund(2048)
        assert bucket._tat == before

    def test_acquire_rejects_nonpositive(self):
        env = Environment()
        bucket = TokenBucket(env, rate_bytes_per_s=1_000_000)
        with pytest.raises(ValueError):
            bucket.acquire(0)
        with pytest.raises(ValueError):
            bucket.refund(-1)
