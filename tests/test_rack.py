"""Rack-scale composition: placement, tenant QoS, migration, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.experiments.runner import SweepPoint, run_points
from repro.experiments.tenancy import hotspot_point, noisy_point
from repro.qos import WeightedFairQueue
from repro.qos.errors import Busy
from repro.qos.tokens import TokenBucket
from repro.rack import (
    ArraySpec,
    HotSpotBalancer,
    RackConfig,
    RackQosConfig,
    VolumeSpec,
    build_rack,
)
from repro.sim.core import Environment
from repro.workloads import MultiTenantWorkload, TenantSpec

KB = 1024
MB = 1_000_000
MS = 1_000_000


def _drain(env, event):
    env.run(until=event)
    return event.value


class TestClusterNamePrefix:
    def test_default_name_keeps_historic_names(self):
        cluster = build_cluster(Environment(), ClusterConfig(num_servers=2))
        assert cluster.host.name == "host"
        assert cluster.servers[0].name == "server0"
        assert cluster.servers[0].drive.name == "server0.nvme"

    def test_named_cluster_prefixes_every_component(self):
        cluster = build_cluster(
            Environment(), ClusterConfig(num_servers=2, name="a0")
        )
        assert cluster.host.name == "a0.host"
        assert cluster.host.nic.name == "a0.host.nic"
        assert cluster.servers[1].name == "a0.server1"
        assert cluster.servers[1].drive.name == "a0.server1.nvme"

    def test_two_named_clusters_share_one_environment(self):
        env = Environment()
        first = build_cluster(env, ClusterConfig(num_servers=2, name="a0"))
        second = build_cluster(env, ClusterConfig(num_servers=2, name="a1"))
        names = {s.name for s in first.servers} | {s.name for s in second.servers}
        assert names == {"a0.server0", "a0.server1", "a1.server0", "a1.server1"}


class TestWeightedFairQueue:
    def test_dispatch_shares_follow_weights(self):
        env = Environment()
        wfq = WeightedFairQueue(env, slots=1)
        wfq.register("heavy", weight=3.0, queue_limit=64)
        wfq.register("light", weight=1.0, queue_limit=64)
        for _ in range(40):
            wfq.acquire("heavy", 4096)
            wfq.acquire("light", 4096)
        for _ in range(40):
            wfq.release()
        # 40 dispatches past the first: heavy gets ~3/4 of them
        heavy, light = wfq.flow("heavy").dispatched, wfq.flow("light").dispatched
        assert heavy + light == 41
        assert heavy == pytest.approx(3 * light, abs=3)

    def test_full_flow_queue_fast_rejects(self):
        env = Environment()
        wfq = WeightedFairQueue(env, slots=1)
        wfq.register("t", weight=1.0, queue_limit=2)
        wfq.acquire("t", 100)  # goes straight into service
        wfq.acquire("t", 100)
        wfq.acquire("t", 100)
        with pytest.raises(Busy):
            wfq.acquire("t", 100)
        assert wfq.flow("t").rejected == 1

    def test_idle_flow_lends_capacity(self):
        env = Environment()
        wfq = WeightedFairQueue(env, slots=2)
        wfq.register("busy", weight=1.0)
        wfq.register("idle", weight=9.0)
        events = [wfq.acquire("busy", 100) for _ in range(4)]
        # both slots serve the only backlogged flow despite its low weight
        assert events[0].triggered and events[1].triggered
        assert not events[2].triggered
        wfq.release()
        assert events[2].triggered

    def test_duplicate_flow_rejected(self):
        wfq = WeightedFairQueue(Environment(), slots=1)
        wfq.register("t")
        with pytest.raises(ValueError):
            wfq.register("t")

    def test_release_without_acquire(self):
        with pytest.raises(RuntimeError):
            WeightedFairQueue(Environment(), slots=1).release()


class TestAcquireWithin:
    def _bucket(self, env, rate_mb_s=100.0, burst=64 * KB):
        return TokenBucket(env, rate_bytes_per_s=rate_mb_s * MB, burst_bytes=burst)

    def test_within_burst_admits_immediately(self):
        env = Environment()
        bucket = self._bucket(env)
        grant = bucket.acquire_within(64 * KB, max_delay_ns=0)
        assert grant is not None
        env.run(until=grant)
        assert bucket.throttle_events == 0

    def test_near_conformance_shapes(self):
        env = Environment()
        bucket = self._bucket(env)
        bucket.acquire_within(64 * KB, max_delay_ns=0)  # drain the burst
        grant = bucket.acquire_within(64 * KB, max_delay_ns=10 * MS)
        assert grant is not None
        start = env.now
        env.run(until=grant)
        assert env.now > start  # the grant waited for refill
        assert bucket.throttle_events == 1

    def test_past_horizon_polices(self):
        env = Environment()
        bucket = self._bucket(env)
        bucket.acquire_within(64 * KB, max_delay_ns=0)
        assert bucket.acquire_within(64 * KB, max_delay_ns=1000) is None
        assert bucket.throttle_events == 1
        # the policed I/O consumed no budget: a patient caller still gets in
        assert bucket.acquire_within(64 * KB, max_delay_ns=10 * MS) is not None


def _two_array_rack(qos=False, placement="least-loaded", export=4 * MB):
    return build_rack(
        None,
        RackConfig(
            arrays=[
                ArraySpec(system="dRAID", servers=4, name="a0", export_bytes=export),
                ArraySpec(system="dRAID", servers=4, name="a1", export_bytes=export),
            ],
            placement=placement,
            qos=RackQosConfig() if qos else None,
        ),
    )


class TestPlacement:
    def test_first_fit_packs_in_rack_order(self):
        rack = _two_array_rack(placement="first-fit")
        v0 = rack.volumes.create(VolumeSpec("v0", 1 * MB))
        v1 = rack.volumes.create(VolumeSpec("v1", 1 * MB))
        assert v0.home.name == "a0" and v1.home.name == "a0"

    def test_best_fit_picks_tightest_array(self):
        rack = _two_array_rack(placement="best-fit")
        rack.volumes.create(VolumeSpec("filler", 3 * MB), on="a0")
        v = rack.volumes.create(VolumeSpec("v", 1 * MB))
        assert v.home.name == "a0"  # 1 MB free beats 4 MB free
        v2 = rack.volumes.create(VolumeSpec("v2", 2 * MB))
        assert v2.home.name == "a1"  # a0 can no longer fit it

    def test_least_loaded_balances_demand(self):
        rack = _two_array_rack()
        rack.volumes.create(VolumeSpec("hot", 1 * MB, demand_mb_s=500.0))
        cool = rack.volumes.create(VolumeSpec("cool", 1 * MB, demand_mb_s=10.0))
        assert cool.home.name == "a1"
        third = rack.volumes.create(VolumeSpec("third", 1 * MB, demand_mb_s=5.0))
        assert third.home.name == "a1"  # 10 MB/s still below a0's 500

    def test_pin_overrides_policy(self):
        rack = _two_array_rack()
        rack.volumes.create(VolumeSpec("hot", 1 * MB, demand_mb_s=500.0), on="a0")
        pinned = rack.volumes.create(
            VolumeSpec("pinned", 1 * MB, demand_mb_s=1.0), on="a0"
        )
        assert pinned.home.name == "a0"

    def test_capacity_exhaustion_raises(self):
        rack = _two_array_rack()
        rack.volumes.create(VolumeSpec("big0", 4 * MB))
        rack.volumes.create(VolumeSpec("big1", 4 * MB))
        with pytest.raises(ValueError):
            rack.volumes.create(VolumeSpec("overflow", 1 * MB))

    def test_duplicate_volume_name_rejected(self):
        rack = _two_array_rack()
        rack.volumes.create(VolumeSpec("v", 1 * MB))
        with pytest.raises(ValueError):
            rack.volumes.create(VolumeSpec("v", 1 * MB))

    def test_placement_is_deterministic(self):
        def placements():
            rack = _two_array_rack()
            for i in range(6):
                rack.volumes.create(
                    VolumeSpec(f"v{i}", 1 * MB, demand_mb_s=float(i * 7 % 5))
                )
            return {v.name: v.home.name for v in rack.volumes.volumes.values()}

        assert placements() == placements()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            build_rack(None, RackConfig(placement="round-robin"))


class TestSingleArrayByteIdentity:
    def test_rack_fio_matches_direct_build(self):
        """A 1-array unnamed rack is the historic testbed, byte for byte."""
        from repro.experiments.common import fio_point, measure_window_ns
        from repro.workloads import FioWorkload

        direct = fio_point("dRAID", servers=4, fast=True)
        rack = build_rack(
            None, RackConfig(arrays=[ArraySpec(system="dRAID", servers=4)])
        )
        fio = FioWorkload(
            rack.arrays[0].array, 128 * KB, read_fraction=0.0,
            queue_depth=64, seed=1234,
        )
        via_rack = fio.run(measure_ns=measure_window_ns(True))
        assert via_rack == direct


class TestVolumeIo:
    def test_unarmed_volume_passthrough_and_bounds(self):
        rack = _two_array_rack()
        volume = rack.volumes.create(VolumeSpec("v", 1 * MB))
        env = rack.env
        _drain(env, volume.read(0, 64 * KB))
        _drain(env, volume.write(64 * KB, 64 * KB))
        with pytest.raises(ValueError):
            volume.read(1 * MB - 4 * KB, 64 * KB)  # crosses the end
        with pytest.raises(ValueError):
            volume.read(-1, 4 * KB)

    def test_rate_limited_volume_rejects_over_budget(self):
        rack = _two_array_rack(qos=True)
        volume = rack.volumes.create(
            VolumeSpec("v", 1 * MB, rate_limit_mb_s=10.0, burst_bytes=64 * KB)
        )
        env = rack.env
        _drain(env, volume.read(0, 64 * KB))  # consumes the whole burst
        with pytest.raises(Busy):
            # refill of another 64 KiB takes 6.5 ms >> the 2 ms horizon
            _drain(env, volume.read(0, 64 * KB))
        assert volume.qos_rejections == 1


class TestMigration:
    def _functional_rack(self):
        functional = ClusterConfig(functional_capacity=4 * MB)
        return build_rack(
            None,
            RackConfig(
                arrays=[
                    ArraySpec(
                        system="dRAID", servers=4, chunk_bytes=16 * KB,
                        name="a0", export_bytes=4 * MB, cluster=functional,
                    ),
                    ArraySpec(
                        system="dRAID", servers=4, chunk_bytes=16 * KB,
                        name="a1", export_bytes=4 * MB, cluster=functional,
                    ),
                ]
            ),
        )

    def test_functional_migration_preserves_bytes(self):
        rack = self._functional_rack()
        env = rack.env
        volume = rack.volumes.create(VolumeSpec("v", 256 * KB), on="a0")
        rng = np.random.default_rng(7)
        payload = rng.integers(0, 256, size=256 * KB, dtype=np.uint8)
        _drain(env, volume.write(0, 256 * KB, payload))
        done = rack.volumes.migrate(
            volume, rack.array("a1"), extent_bytes=64 * KB
        )
        env.run(until=done)
        assert volume.home.name == "a1"
        readback = _drain(env, volume.read(0, 256 * KB))
        assert np.array_equal(np.asarray(readback, dtype=np.uint8), payload)

    def test_migration_moves_capacity_accounting(self):
        rack = self._functional_rack()
        env = rack.env
        volume = rack.volumes.create(
            VolumeSpec("v", 256 * KB, demand_mb_s=42.0), on="a0"
        )
        src, dst = rack.array("a0"), rack.array("a1")
        assert src.allocated_bytes == 256 * KB and dst.allocated_bytes == 0
        env.run(until=rack.volumes.migrate(volume, dst, extent_bytes=64 * KB))
        assert src.allocated_bytes == 0 and dst.allocated_bytes == 256 * KB
        assert src.placed_demand_mb_s == 0.0
        assert dst.placed_demand_mb_s == 42.0
        assert volume in dst.volumes and volume not in src.volumes
        record = rack.volumes.migrations[0]
        assert (record.volume, record.source, record.destination) == ("v", "a0", "a1")
        assert record.moved_bytes == 256 * KB
        assert record.finished_ns > record.started_ns

    def test_migrate_to_current_home_rejected(self):
        rack = self._functional_rack()
        volume = rack.volumes.create(VolumeSpec("v", 256 * KB), on="a0")
        with pytest.raises(ValueError):
            rack.volumes.migrate(volume, rack.array("a0"))

    def test_migration_is_reproducible(self):
        def records():
            result = hotspot_point("dRAID", migrate=True, fast=True)
            return result

        assert records() == records()


class TestBalancer:
    def test_requires_qos_armed_rack(self):
        with pytest.raises(ValueError):
            HotSpotBalancer(_two_array_rack(qos=False))

    def test_threshold_validation(self):
        rack = _two_array_rack(qos=True)
        with pytest.raises(ValueError):
            HotSpotBalancer(rack, high_backlog=8, low_backlog=8)
        with pytest.raises(ValueError):
            HotSpotBalancer(rack, interval_ns=0)

    def test_idle_rack_never_migrates(self):
        rack = _two_array_rack(qos=True)
        rack.volumes.create(VolumeSpec("v", 1 * MB))
        balancer = HotSpotBalancer(rack, interval_ns=1 * MS)
        rack.env.run(until=5 * MS)
        assert balancer.scans >= 4
        assert balancer.migrations_started == 0
        assert rack.volumes.migrations == []


class TestMultiTenant:
    def _run_once(self):
        rack = _two_array_rack(qos=True, export=64 * MB)
        workload = MultiTenantWorkload(
            rack,
            [
                TenantSpec("alpha", 64 * KB, 30_000.0, volume_bytes=8 * MB,
                           deadline_ns=5 * MS, weight=2.0),
                TenantSpec("beta", 64 * KB, 50_000.0, volume_bytes=8 * MB,
                           deadline_ns=5 * MS, arrival="diurnal"),
            ],
        )
        return workload.run(warmup_ns=1 * MS, measure_ns=4 * MS)

    def test_two_runs_identical(self):
        first, second = self._run_once(), self._run_once()
        assert first == second

    def test_duplicate_tenant_names_rejected(self):
        rack = _two_array_rack(qos=True)
        spec = TenantSpec("t", 64 * KB, 1000.0, volume_bytes=1 * MB)
        with pytest.raises(ValueError):
            MultiTenantWorkload(rack, [spec, spec])

    def test_seed_derivation_is_stable(self):
        a = TenantSpec("alpha", 64 * KB, 1000.0, volume_bytes=1 * MB)
        assert a.resolved_seed() == TenantSpec(
            "alpha", 4 * KB, 9.0, volume_bytes=2 * MB
        ).resolved_seed()
        assert a.resolved_seed() != TenantSpec(
            "beta", 64 * KB, 1000.0, volume_bytes=1 * MB
        ).resolved_seed()
        assert TenantSpec(
            "alpha", 64 * KB, 1000.0, volume_bytes=1 * MB, seed=7
        ).resolved_seed() == 7


class TestTenancyParallelIdentity:
    def test_serial_matches_parallel(self):
        points = [
            SweepPoint(noisy_point, dict(system="dRAID", qos=True, fast=True)),
            SweepPoint(hotspot_point, dict(system="dRAID", migrate=True, fast=True)),
        ]
        serial = run_points(points, jobs=1)
        parallel = run_points(points, jobs=2)
        assert serial == parallel
