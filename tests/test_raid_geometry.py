"""Tests for RAID geometry, write-mode classification and stripe locks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raid import (
    RaidGeometry,
    RaidLevel,
    StripeLockManager,
    WriteMode,
    classify_write,
)
from repro.sim import Environment

KB = 1024
CHUNK = 512 * KB


def paper_geometry(level=RaidLevel.RAID5, drives=8, chunk=CHUNK):
    return RaidGeometry(level, drives, chunk)


class TestPlacement:
    def test_raid5_parity_rotates_left_symmetric(self):
        g = paper_geometry()
        assert [g.parity_drives(s)[0] for s in range(8)] == [7, 6, 5, 4, 3, 2, 1, 0]
        assert g.parity_drives(8) == (7,)

    def test_raid6_q_follows_p(self):
        g = paper_geometry(RaidLevel.RAID6)
        assert g.parity_drives(0) == (7, 0)
        assert g.parity_drives(7) == (0, 1)

    def test_data_drives_disjoint_from_parity(self):
        for level in RaidLevel:
            g = paper_geometry(level)
            for stripe in range(20):
                parity = set(g.parity_drives(stripe))
                data = {g.data_drive(stripe, d) for d in range(g.data_per_stripe)}
                assert not (parity & data)
                assert len(data) == g.data_per_stripe
                assert parity | data == set(range(8))

    def test_parity_evenly_distributed(self):
        """§6: 'parity chunks are evenly distributed among all member drives'."""
        g = paper_geometry(RaidLevel.RAID6, drives=6)
        counts = {d: 0 for d in range(6)}
        for stripe in range(60):
            for p in g.parity_drives(stripe):
                counts[p] += 1
        assert set(counts.values()) == {20}

    def test_data_index_inverse(self):
        g = paper_geometry()
        for stripe in range(10):
            for d in range(g.data_per_stripe):
                drive = g.data_drive(stripe, d)
                assert g.data_index_of_drive(stripe, drive) == d

    def test_data_index_of_parity_drive_rejected(self):
        g = paper_geometry()
        with pytest.raises(ValueError):
            g.data_index_of_drive(0, g.parity_drives(0)[0])

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            RaidGeometry(RaidLevel.RAID5, 2, CHUNK)
        with pytest.raises(ValueError):
            RaidGeometry(RaidLevel.RAID6, 3, CHUNK)
        with pytest.raises(ValueError):
            RaidGeometry(RaidLevel.RAID5, 4, 1000)  # not 4 KiB aligned


class TestExtentMapping:
    def test_single_chunk_io(self):
        g = paper_geometry()
        extents = g.map_extent(0, 128 * KB)
        assert len(extents) == 1
        (seg,) = extents[0].segments
        assert seg.data_index == 0
        assert seg.chunk_offset == 0
        assert seg.length == 128 * KB
        assert seg.drive == g.data_drive(0, 0)

    def test_io_spanning_two_chunks(self):
        g = paper_geometry()
        extents = g.map_extent(CHUNK - 4 * KB, 8 * KB)
        (ext,) = extents
        assert [s.data_index for s in ext.segments] == [0, 1]
        assert ext.segments[0].length == 4 * KB
        assert ext.segments[1].length == 4 * KB
        assert ext.segments[1].chunk_offset == 0

    def test_io_spanning_two_stripes(self):
        g = paper_geometry()
        stripe_bytes = g.stripe_data_bytes
        extents = g.map_extent(stripe_bytes - 64 * KB, 128 * KB)
        assert [e.stripe for e in extents] == [0, 1]
        assert extents[0].touched_bytes == 64 * KB
        assert extents[1].touched_bytes == 64 * KB

    def test_io_offsets_cover_buffer(self):
        g = paper_geometry()
        extents = g.map_extent(300 * KB, 2000 * KB)
        covered = sorted(
            (s.io_offset, s.io_offset + s.length)
            for e in extents
            for s in e.segments
        )
        assert covered[0][0] == 0
        assert covered[-1][1] == 2000 * KB
        for (_, end), (start, _) in zip(covered, covered[1:]):
            assert end == start

    def test_parity_span_union(self):
        g = paper_geometry()
        # touch tail of chunk 0 and head of chunk 1: span is the union
        (ext,) = g.map_extent(CHUNK - 4 * KB, 8 * KB)
        off, length = ext.parity_span()
        assert off == 0
        assert length == CHUNK  # union of [508K,512K) and [0,4K) spans whole chunk

    def test_drive_offset_accounts_stripe(self):
        g = paper_geometry()
        (ext,) = g.map_extent(g.stripe_data_bytes * 3 + 10 * 4096, 4096)
        (seg,) = ext.segments
        assert seg.drive_offset == 3 * CHUNK + 10 * 4096
        assert ext.parity_offset == 3 * CHUNK

    def test_invalid_extent(self):
        g = paper_geometry()
        with pytest.raises(ValueError):
            g.map_extent(-1, 10)
        with pytest.raises(ValueError):
            g.map_extent(0, 0)

    @given(
        offset=st.integers(0, 50 * 1024 * 1024),
        length=st.integers(1, 8 * 1024 * 1024),
        drives=st.integers(4, 18),
        level=st.sampled_from(list(RaidLevel)),
    )
    @settings(max_examples=60, deadline=None)
    def test_mapping_is_a_partition(self, offset, length, drives, level):
        """Every user byte maps to exactly one (drive, offset) location."""
        g = RaidGeometry(level, drives, 64 * KB)
        extents = g.map_extent(offset, length)
        total = sum(e.touched_bytes for e in extents)
        assert total == length
        seen = set()
        for e in extents:
            for s in e.segments:
                key = (s.drive, s.drive_offset)
                assert key not in seen
                seen.add(key)
                assert 0 < s.length <= g.chunk_bytes
                assert s.drive_offset == e.stripe * g.chunk_bytes + s.chunk_offset


class TestWriteModes:
    def test_paper_boundaries_raid5(self):
        """§9.3: <1536 KiB RMW; 1536–3584 RCW; 3584 full stripe (8 drives)."""
        g = paper_geometry()
        (small,) = g.map_extent(0, 128 * KB)
        assert classify_write(g, small) == WriteMode.READ_MODIFY_WRITE
        (below,) = g.map_extent(0, 1536 * KB - 4 * KB)
        assert classify_write(g, below) == WriteMode.READ_MODIFY_WRITE
        (mid,) = g.map_extent(0, 1536 * KB)
        assert classify_write(g, mid) == WriteMode.RECONSTRUCT_WRITE
        (big,) = g.map_extent(0, 2048 * KB)
        assert classify_write(g, big) == WriteMode.RECONSTRUCT_WRITE
        (full,) = g.map_extent(0, 3584 * KB)
        assert classify_write(g, full) == WriteMode.FULL_STRIPE

    def test_raid6_boundaries(self):
        g = paper_geometry(RaidLevel.RAID6)
        (small,) = g.map_extent(0, 512 * KB)
        assert classify_write(g, small) == WriteMode.READ_MODIFY_WRITE
        (mid,) = g.map_extent(0, 2048 * KB)
        assert classify_write(g, mid) == WriteMode.RECONSTRUCT_WRITE
        (full,) = g.map_extent(0, 3072 * KB)
        assert classify_write(g, full) == WriteMode.FULL_STRIPE

    @given(
        offset=st.integers(0, 20 * 1024 * 1024),
        length=st.integers(4096, 4 * 1024 * 1024),
    )
    @settings(max_examples=40, deadline=None)
    def test_full_stripe_iff_whole_stripe_touched(self, offset, length):
        g = paper_geometry()
        for ext in g.map_extent(offset, length):
            mode = classify_write(g, ext)
            if ext.touched_bytes == g.stripe_data_bytes:
                assert mode == WriteMode.FULL_STRIPE
            else:
                assert mode != WriteMode.FULL_STRIPE


class TestStripeLocks:
    def test_exclusive_fifo(self):
        env = Environment()
        locks = StripeLockManager(env)
        order = []

        def worker(tag, hold_ns):
            yield locks.acquire(7)
            order.append((tag, env.now))
            yield env.timeout(hold_ns)
            locks.release(7)

        env.process(worker("a", 100))
        env.process(worker("b", 50))
        env.process(worker("c", 10))
        env.run()
        assert order == [("a", 0), ("b", 100), ("c", 150)]
        assert locks.contended_acquires == 2

    def test_different_stripes_independent(self):
        env = Environment()
        locks = StripeLockManager(env)
        times = []

        def worker(stripe):
            yield locks.acquire(stripe)
            yield env.timeout(10)
            times.append(env.now)
            locks.release(stripe)

        env.process(worker(1))
        env.process(worker(2))
        env.run()
        assert times == [10, 10]

    def test_release_unheld_raises(self):
        env = Environment()
        locks = StripeLockManager(env)
        with pytest.raises(RuntimeError):
            locks.release(3)

    def test_lock_state_cleanup(self):
        env = Environment()
        locks = StripeLockManager(env)

        def worker():
            yield locks.acquire(5)
            locks.release(5)

        env.run(until=env.process(worker()))
        assert not locks.held(5)
        assert locks.queue_length(5) == 0
