"""Tests for online rebuild with the rebuild watermark."""

import numpy as np
import pytest

from repro.baselines import SpdkRaid
from repro.draid import DraidArray
from repro.raid.geometry import RaidLevel
from repro.raid.rebuild import RebuildJob
from tests.raid_harness import ArrayHarness, TEST_CHUNK

CONTROLLERS = [SpdkRaid, DraidArray]


@pytest.fixture(params=CONTROLLERS, ids=lambda c: c.__name__)
def controller_cls(request):
    return request.param


class TestRebuild:
    def test_full_rebuild_restores_drive_contents(self, controller_cls):
        h = ArrayHarness(controller_cls, stripes=12)
        rng = np.random.default_rng(1)
        blob = rng.integers(0, 256, 12 * h.geometry.stripe_data_bytes, dtype=np.uint8)
        h.write(0, blob)
        victim = 2
        before = h.cluster.drives()[victim].peek(0, 12 * TEST_CHUNK).copy()
        h.array.fail_drive(victim)
        # wipe the replacement to prove the rebuild actually writes it
        h.cluster.drives()[victim]._data[:] = 0
        job = RebuildJob(h.array, victim, num_stripes=12)
        stats = h.env.run(until=job.start())
        assert stats.stripes_rebuilt == 12
        assert stats.data_chunks_rebuilt + stats.parity_chunks_rebuilt == 12
        after = h.cluster.drives()[victim].peek(0, 12 * TEST_CHUNK)
        assert np.array_equal(before, after)
        assert not h.array.degraded
        h.scrub()
        h.check_read(0, len(blob))

    def test_rebuild_of_raid6_q_parity(self):
        h = ArrayHarness(DraidArray, level=RaidLevel.RAID6, drives=6, stripes=8)
        rng = np.random.default_rng(2)
        blob = rng.integers(0, 256, 8 * h.geometry.stripe_data_bytes, dtype=np.uint8)
        h.write(0, blob)
        victim = 4
        before = h.cluster.drives()[victim].peek(0, 8 * TEST_CHUNK).copy()
        h.array.fail_drive(victim)
        h.cluster.drives()[victim]._data[:] = 0
        stats = h.env.run(until=RebuildJob(h.array, victim, num_stripes=8).start())
        assert np.array_equal(before, h.cluster.drives()[victim].peek(0, 8 * TEST_CHUNK))
        h.scrub()

    def test_concurrent_writes_during_rebuild_stay_consistent(self, controller_cls):
        """Writes racing the rebuild land correctly on both sides of the
        watermark: rebuilt stripes update the replacement directly, pending
        stripes go through the degraded path and are rebuilt afterwards."""
        h = ArrayHarness(controller_cls, stripes=12)
        rng = np.random.default_rng(3)
        blob = rng.integers(0, 256, 12 * h.geometry.stripe_data_bytes, dtype=np.uint8)
        h.write(0, blob)
        victim = 1
        h.array.fail_drive(victim)
        h.cluster.drives()[victim]._data[:] = 0
        job = RebuildJob(h.array, victim, num_stripes=12, throttle_ns=200_000)
        done = job.start()

        payloads = []

        def writer():
            for i in range(10):
                stripe = (i * 5) % 12
                offset = stripe * h.geometry.stripe_data_bytes + (i % 3) * 1000
                payload = rng.integers(0, 256, 3000, dtype=np.uint8)
                payloads.append((offset, payload))
                yield h.array.write(offset, len(payload), payload)
                yield h.env.timeout(150_000)

        writes_done = h.env.process(writer())
        h.env.run(until=done)
        h.env.run(until=writes_done)
        for offset, payload in payloads:
            h.model[offset : offset + len(payload)] = payload
        assert not h.array.degraded
        h.scrub()
        h.check_read(0, len(blob))

    def test_watermark_semantics(self, controller_cls):
        h = ArrayHarness(controller_cls, stripes=8)
        h.array.fail_drive(0)
        h.array.rebuild_watermark[0] = 3
        assert not h.array.drive_failed(0, 2)
        assert h.array.drive_failed(0, 3)
        assert h.array.failed_in_stripe(2) == set()
        assert h.array.failed_in_stripe(5) == {0}
        h.array.repair_drive(0)
        assert h.array.rebuild_watermark == {}

    def test_rebuild_requires_failed_drive(self, controller_cls):
        h = ArrayHarness(controller_cls)
        with pytest.raises(ValueError):
            RebuildJob(h.array, 0, num_stripes=4)

    def test_progress_and_rate(self, controller_cls):
        h = ArrayHarness(controller_cls, stripes=6)
        rng = np.random.default_rng(4)
        h.write(0, rng.integers(0, 256, 6 * h.geometry.stripe_data_bytes, dtype=np.uint8))
        h.array.fail_drive(3)
        job = RebuildJob(h.array, 3, num_stripes=6)
        assert job.progress == 0.0
        stats = h.env.run(until=job.start())
        assert job.progress == 1.0
        assert stats.rate_mb_s() > 0
