"""Tests for reducer selection: the §6.2 max-min solver and selectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, build_cluster
from repro.draid.reconstruction import (
    BandwidthAwareSelector,
    RandomReducerSelector,
    solve_reducer_probabilities,
)
from repro.sim import Environment

GB = 1e9


class TestSolver:
    @given(
        bandwidths=st.lists(st.floats(0, 100 * GB), min_size=1, max_size=20),
        load=st.floats(0, 10 * GB),
    )
    @settings(max_examples=100, deadline=None)
    def test_valid_distribution(self, bandwidths, load):
        probs = solve_reducer_probabilities(bandwidths, load)
        assert len(probs) == len(bandwidths)
        assert all(p >= 0 for p in probs)
        assert sum(probs) == pytest.approx(1.0)

    def test_homogeneous_is_uniform(self):
        probs = solve_reducer_probabilities([10 * GB] * 5, load=1 * GB)
        assert probs == pytest.approx([0.2] * 5)

    def test_starved_bdev_gets_zero(self):
        # one bdev has almost no headroom: it should not be picked
        probs = solve_reducer_probabilities([10 * GB, 10 * GB, 0.01 * GB], load=2 * GB)
        assert probs[2] == pytest.approx(0.0, abs=1e-9)
        assert probs[0] == pytest.approx(probs[1])

    def test_heterogeneous_prefers_fat_pipe(self):
        # 100G vs 25G NICs (the paper's Fig 17b setup)
        probs = solve_reducer_probabilities([11.5 * GB, 2.875 * GB], load=1 * GB)
        assert probs[0] > probs[1]

    @given(
        bandwidths=st.lists(st.floats(0.1 * GB, 50 * GB), min_size=2, max_size=10),
        load=st.floats(0.1 * GB, 5 * GB),
    )
    @settings(max_examples=50, deadline=None)
    def test_maximizes_minimum_remaining_bandwidth(self, bandwidths, load):
        """Cross-check against scipy linprog on the same LP."""
        from scipy.optimize import linprog

        n = len(bandwidths)
        demand = (n - 1) * load
        # variables: P_1..P_n, t ; maximize t
        # constraints: B_i - P_i * demand >= t  =>  P_i * demand + t <= B_i
        a_ub = np.zeros((n, n + 1))
        for i in range(n):
            a_ub[i, i] = demand
            a_ub[i, n] = 1.0
        b_ub = np.array(bandwidths)
        a_eq = np.zeros((1, n + 1))
        a_eq[0, :n] = 1.0
        c = np.zeros(n + 1)
        c[n] = -1.0
        bounds = [(0, 1)] * n + [(None, None)]
        lp = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=[1.0], bounds=bounds)
        assert lp.success
        optimal_t = -lp.fun
        probs = solve_reducer_probabilities(bandwidths, load)
        ours_t = min(b - p * demand for b, p in zip(bandwidths, probs))
        assert ours_t >= optimal_t - max(1.0, abs(optimal_t)) * 1e-6

    def test_zero_load_proportional(self):
        probs = solve_reducer_probabilities([3 * GB, 1 * GB], load=0)
        assert probs == pytest.approx([0.75, 0.25])

    def test_all_zero_bandwidth_uniform(self):
        probs = solve_reducer_probabilities([0, 0, 0], load=1 * GB)
        assert probs == pytest.approx([1 / 3] * 3)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            solve_reducer_probabilities([], load=1)
        with pytest.raises(ValueError):
            solve_reducer_probabilities([-1.0], load=1)


class TestSelectors:
    def test_random_selector_uniformity(self):
        sel = RandomReducerSelector(seed=0)
        counts = {i: 0 for i in range(4)}
        for _ in range(4000):
            counts[sel.pick([0, 1, 2, 3], 4096)] += 1
        for c in counts.values():
            assert 800 < c < 1200

    def test_bandwidth_aware_avoids_slow_nic(self):
        env = Environment()
        cluster = build_cluster(
            env,
            ClusterConfig(num_servers=4, server_nic_rates=[11.5 * GB] * 3 + [0.5 * GB]),
        )
        sel = BandwidthAwareSelector(cluster, seed=1)
        # reconstruction load comparable to the wimpy NIC's bandwidth
        sel._load_ewma = 1e9
        probs = sel.probabilities([0, 1, 2, 3])
        # the wimpy NIC gets (almost) no reducer traffic
        assert probs[3] < 0.01
        assert probs[0] == pytest.approx(probs[1])
        # and sampling respects the distribution
        counts = {i: 0 for i in range(4)}
        for _ in range(400):
            counts[sel._rng.choices([0, 1, 2, 3], weights=probs, k=1)[0]] += 1
        assert counts[3] < 10

    def test_bandwidth_aware_tracks_backlog(self):
        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=3))
        sel = BandwidthAwareSelector(cluster, seed=2)
        sel._load_ewma = 1 * GB
        # server 0 has a huge TX backlog
        cluster.servers[0].nic.tx.reserve(50_000_000)
        probs = sel.probabilities([0, 1, 2])
        assert probs[0] < probs[1]
        assert probs[1] == pytest.approx(probs[2])

    def test_ewma_updates(self):
        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=3))
        sel = BandwidthAwareSelector(cluster, seed=3, alpha=0.5)
        assert sel.load_estimate == 0.0
        sel.pick([0, 1, 2], 128 * 1024)
        env.run(until=env.now + 100_000)
        sel.pick([0, 1, 2], 128 * 1024)
        assert sel.load_estimate > 0

    def test_invalid_alpha(self):
        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=2))
        with pytest.raises(ValueError):
            BandwidthAwareSelector(cluster, alpha=0)
