"""Tests for availability-aware recovery orchestration (repro.raid.recovery).

Covers the satellite regressions that motivated the subsystem:

* fail-slow hysteresis — a gray drive oscillating around the ejection
  threshold must not flap in and out of rotation;
* rebuild-watermark restart — a member re-failing mid-rebuild (or across a
  heal -> fail -> heal cycle) restarts from scratch instead of resuming
  stale progress;
* risk-ordered scheduling — in a double-degraded RAID-6 group the
  zero-redundancy stripes drain before the single-degraded ones.
"""

import numpy as np
import pytest

from repro.baselines import SpdkRaid
from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.faults import DriveFail, DriveHeal, FailSlowDetector, FaultInjector, FaultPlan
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.raid.rebuild import RebuildJob
from repro.raid.recovery import RecoveryOrchestrator, SparePool
from repro.sim import Environment
from repro.verify import VerifyConfig
from tests.raid_harness import ArrayHarness, TEST_CHUNK

MS = 1_000_000

CONTROLLERS = [SpdkRaid, DraidArray]


@pytest.fixture(params=CONTROLLERS, ids=lambda c: c.__name__)
def controller_cls(request):
    return request.param


def _hysteresis_loop(det, schedule, tick_ns=1_000):
    """Drive the detector the way a controller would: observe, then eject
    on ``suspect`` / re-admit on ``recovered``.  Returns admission flips."""
    now = 0
    ejected = False
    flips = 0
    for sample in schedule:
        now += tick_ns
        for peer in range(4):
            det.observe(peer, 1_000)
        det.observe(4, sample)
        if not ejected and det.suspect(4, now_ns=now):
            det.note_eject(4, now)
            ejected = True
            flips += 1
        elif ejected and det.recovered(4, now):
            det.note_readmit(4, now)
            ejected = False
            flips += 1
    return flips


class TestFailSlowHysteresis:
    def _oscillation(self, cycles=40):
        # EWMA oscillates just above / just below 3x the peer median
        out = []
        for _ in range(cycles):
            out.extend([6_000] * 4)  # drags EWMA above 3 000
            out.extend([1_500] * 4)  # drags it back below
        return out

    def test_band_prevents_flapping(self):
        """Regression: without the band the oscillating member flips in
        and out on nearly every swing; with it the episode costs exactly
        one ejection (re-admission needs exit_ratio x median *and* dwell)."""
        banded = FailSlowDetector(
            min_samples=4, floor_ns=100, exit_ratio=1.5, cooldown_ns=8_000
        )
        flat = FailSlowDetector(
            min_samples=4, floor_ns=100, exit_ratio=3.0, cooldown_ns=0
        )
        schedule = self._oscillation()
        assert _hysteresis_loop(banded, schedule) == 1
        assert _hysteresis_loop(flat, schedule) > 3
        assert banded.flap_count(4) == 1

    def test_recovered_requires_dwell_and_fresh_samples(self):
        det = FailSlowDetector(min_samples=4, floor_ns=100, cooldown_ns=10_000)
        for peer in range(4):
            for _ in range(4):
                det.observe(peer, 1_000)
        for _ in range(4):
            det.observe(4, 10_000)
        assert det.suspect(4, now_ns=100)
        det.note_eject(4, 100)
        # history dropped: fast fresh samples alone are not enough within dwell
        for _ in range(4):
            det.observe(4, 1_000)
        assert not det.recovered(4, now_ns=100 + 5_000)
        assert det.recovered(4, now_ns=100 + 10_000)

    def test_readmit_dwell_blocks_instant_reeject(self):
        det = FailSlowDetector(min_samples=2, floor_ns=100, cooldown_ns=10_000)
        det.note_readmit(4, 50_000)
        for peer in range(4):
            for _ in range(2):
                det.observe(peer, 1_000)
        for _ in range(2):
            det.observe(4, 50_000)
        assert not det.suspect(4, now_ns=55_000)  # inside the re-eject dwell
        assert det.suspect(4, now_ns=60_000)
        # callers that never pass now_ns keep the pre-hysteresis behavior
        assert det.suspect(4)


class TestWatermarkRestart:
    def test_refail_clears_watermark(self, controller_cls):
        """A re-failing member must restart its rebuild from scratch."""
        h = ArrayHarness(controller_cls, stripes=12)
        h.array.fail_drive(2)
        h.array.rebuild_watermark[2] = 7  # simulate a part-way rebuild
        h.array.rebuilt_stripes[2] = {9}
        h.array.repair_drive(2)
        h.array.fail_drive(2)
        assert 2 not in h.array.rebuild_watermark
        assert 2 not in h.array.rebuilt_stripes
        assert h.array.drive_failed(2, 0) and h.array.drive_failed(2, 9)

    def test_second_failure_mid_rebuild_restarts(self, controller_cls):
        """heal -> fail -> heal: the second rebuild must not resume the
        first one's stale watermark (the replacement is empty again)."""
        h = ArrayHarness(controller_cls, stripes=12)
        rng = np.random.default_rng(5)
        blob = rng.integers(0, 256, h.capacity, dtype=np.uint8)
        h.write(0, blob)
        victim = 1
        h.array.fail_drive(victim)
        job = RebuildJob(h.array, victim, num_stripes=12)
        done = job.start()

        def refail():
            # let the sweep pass a few stripes, then kill the replacement
            yield h.env.timeout(200_000)
            assert job.stats.stripes_rebuilt > 0
            h.array.fail_drive(victim)

        h.env.process(refail(), name="refail")
        with pytest.raises(RuntimeError):
            h.env.run(until=done)
        assert victim not in h.array.rebuild_watermark
        assert victim not in h.array.rebuilt_stripes
        # every stripe is treated as failed again — no stale resume window
        assert all(h.array.drive_failed(victim, s) for s in range(12))
        h.cluster.drives()[victim]._data[:] = 0
        stats = h.env.run(until=RebuildJob(h.array, victim, num_stripes=12).start())
        assert stats.stripes_rebuilt == 12  # restarted from stripe 0
        assert victim not in h.array.failed
        h.scrub()
        h.check_read(0, h.capacity)

    def test_drive_failed_consults_rebuilt_set(self, controller_cls):
        h = ArrayHarness(controller_cls, stripes=8)
        h.array.fail_drive(3)
        h.array.rebuilt_stripes[3] = {5, 6}
        assert not h.array.drive_failed(3, 5)
        assert not h.array.drive_failed(3, 6)
        assert h.array.drive_failed(3, 0)
        h.array.repair_drive(3)
        assert 3 not in h.array.rebuilt_stripes
        assert not h.array.drive_failed(3, 0)


def _sanitized_harness(stripes=10, drives=6):
    """A RAID-6 dRAID array with the runtime sanitizer armed."""
    env = Environment()
    config = ClusterConfig(
        num_servers=drives,
        functional_capacity=stripes * TEST_CHUNK,
        verify=VerifyConfig(),
    )
    cluster = build_cluster(env, config)
    geometry = RaidGeometry(RaidLevel.RAID6, drives, TEST_CHUNK)
    array = DraidArray(cluster, geometry)
    return env, cluster, geometry, array


class TestRecoveryOrchestrator:
    def test_orchestrated_rebuild_restores_contents(self, controller_cls):
        h = ArrayHarness(controller_cls, stripes=12)
        rng = np.random.default_rng(8)
        blob = rng.integers(0, 256, h.capacity, dtype=np.uint8)
        h.write(0, blob)
        orch = RecoveryOrchestrator(h.array, num_stripes=12, spares=SparePool(h.env, 2))
        assert h.cluster.recovery is orch
        h.array.fail_drive(2)
        h.env.run(until=orch.request_rebuild(2))
        assert 2 not in h.array.failed
        assert orch.stats.rebuilds_completed == 1
        assert orch.stats.chunks_recovered == 12
        assert not orch.rebuilding
        h.scrub()
        h.check_read(0, h.capacity)

    def test_double_degraded_stripes_drain_first(self):
        """RAID-6, second failure mid-rebuild: every stripe that lost two
        chunks (zero surviving redundancy) must finish before any stripe
        that lost one — asserted on the scheduler's pick sequence under a
        sanitizer-armed array, with the shadow model checked at the end."""
        stripes = 10
        env, cluster, geometry, array = _sanitized_harness(stripes=stripes)
        rng = np.random.default_rng(13)
        blob = rng.integers(0, 256, stripes * geometry.stripe_data_bytes, dtype=np.uint8)
        env.run(until=array.write(0, len(blob), blob))
        orch = RecoveryOrchestrator(array, num_stripes=stripes, pace_ns=20_000)
        picks = []
        inner_next = orch._next_target

        def spying_next():
            stripe = inner_next()
            if stripe is not None:
                picks.append((stripe, len(orch._stripe_pending[stripe])))
            return stripe

        orch._next_target = spying_next
        array.fail_drive(1)
        first = orch.request_rebuild(1)

        second = []

        def refail():
            yield env.timeout(300_000)
            assert orch.rebuilding  # drive 1's rebuild is still in flight
            array.fail_drive(4)
            second.append(orch.request_rebuild(4))

        env.process(refail(), name="refail")
        env.run(until=first)
        env.run(until=second[0])
        joined = next(i for i, (_, risk) in enumerate(picks) if risk == 2)
        tail = [risk for _, risk in picks[joined:]]
        assert 2 in tail and 1 in tail
        assert tail == sorted(tail, reverse=True), (
            f"zero-redundancy stripes must drain before single-degraded: {picks}"
        )
        assert not array.failed
        got = env.run(until=array.read(0, len(blob)))
        assert np.array_equal(got, blob)  # shadow model
        from repro.raid.scrub import scrub_array

        assert scrub_array(cluster.drives(), geometry, stripes).clean

    def test_risk_index_tracks_redundancy(self):
        env, cluster, geometry, array = _sanitized_harness(stripes=6)
        orch = RecoveryOrchestrator(array, num_stripes=6)
        assert orch.risk_index() == {2: 6}
        array.fail_drive(0)
        assert orch.risk_index() == {1: 6}
        array.fail_drive(3)
        array.rebuilt_stripes[3] = {0, 1}
        assert orch.risk_index() == {0: 4, 1: 2}

    def test_spare_pool_serializes_rebuilds(self):
        env, cluster, geometry, array = _sanitized_harness(stripes=6)
        pool = SparePool(env, 1)
        orch = RecoveryOrchestrator(array, num_stripes=6, spares=pool)
        array.fail_drive(0)
        array.fail_drive(3)
        first = orch.request_rebuild(0)
        second = orch.request_rebuild(3)
        env.run(until=first)
        env.run(until=second)
        assert pool.waits == 1
        assert pool.allocated == 2
        assert pool.available == 1
        assert not array.failed

    def test_slo_pacing_adapts(self):
        h = ArrayHarness(DraidArray, stripes=16)
        rng = np.random.default_rng(3)
        h.write(0, rng.integers(0, 256, h.capacity, dtype=np.uint8))
        # an unreachable SLO: every probe overshoots, pacing must back off
        orch = RecoveryOrchestrator(
            h.array, num_stripes=16, slo_p99_us=0.01, probe_every=2,
            max_pace_ns=400_000,
        )
        h.array.fail_drive(2)
        h.env.run(until=orch.request_rebuild(2))
        assert orch.stats.probes > 0
        assert orch.stats.pace_increases >= 1
        assert orch.pace_ns == 400_000
        # a lenient SLO: the same orchestrator decays back toward base pace
        orch.slo_p99_us = 1e9
        h.array.fail_drive(2)
        h.env.run(until=orch.request_rebuild(2))
        assert orch.stats.pace_decreases >= 1
        assert orch.pace_ns == orch.base_pace_ns

    def test_gray_escalation_and_readmission(self):
        """End-to-end gray-failure story: a stuttering drive is ejected by
        the watch loop, kept out through the hysteresis band, and re-admitted
        (via a full rebuild) only after it genuinely recovers."""
        h = ArrayHarness(DraidArray, stripes=8)
        rng = np.random.default_rng(9)
        blob = rng.integers(0, 256, h.capacity, dtype=np.uint8)
        h.write(0, blob)
        detector = FailSlowDetector(
            min_samples=4, floor_ns=1_000, cooldown_ns=2 * MS, exit_ratio=1.5
        )
        orch = RecoveryOrchestrator(
            h.array, num_stripes=8, detector=detector, poll_ns=100_000
        )
        h.cluster.servers[2].drive.set_fail_slow(8.0, duration_ns=4 * MS)
        orch.start_watch()
        h.env.run(until=h.env.timeout(20 * MS))
        orch.stop_watch()
        h.env.run(until=h.env.timeout(1 * MS))
        assert orch.stats.gray_ejections == 1
        assert orch.stats.readmissions == 1
        assert detector.flap_count(2) == 1  # no eject/re-admit flapping
        assert 2 not in h.array.failed
        h.scrub()
        h.check_read(0, h.capacity)

    def test_injector_routes_heal_through_orchestrator(self):
        h = ArrayHarness(SpdkRaid)
        rng = np.random.default_rng(7)
        h.write(0, rng.integers(0, 256, h.capacity, dtype=np.uint8))
        orch = RecoveryOrchestrator(h.array, num_stripes=h.stripes)
        plan = FaultPlan([DriveFail(1 * MS, server=1), DriveHeal(2 * MS, server=1)])
        injector = FaultInjector(h.array, plan, num_stripes=h.stripes)
        h.env.run(until=injector.drain())
        assert injector.rebuilds == 1
        assert orch.stats.rebuilds_completed == 1
        assert 1 not in h.array.failed
        h.check_read(0, h.capacity)
        h.scrub()
