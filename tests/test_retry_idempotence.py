"""Retry idempotence: exactly-once visible effects under every fault kind.

Each typed fault event from :mod:`repro.faults.events` is injected into
the middle of a paced write workload on a tiny functional-mode array with
the protocol checker armed.  The §5.4 retry datapath may time out, fence
and replay writes — but the end state must show *exactly-once* effects:
every byte whose write completed reads back once (shadow-model equality),
replayed acks are accounted as benign ``late_completions``, and the
checker observes no duplicate completions, premature parity folds or cid
reuse anywhere along the way (it would raise mid-run if it did).
"""

import random

import numpy as np
import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.faults.chaos import CHAOS_SYSTEMS, _make_controller
from repro.faults.events import (
    BitRot,
    DriveErrorBurst,
    DriveFail,
    DriveFailSlow,
    DriveHeal,
    LinkStall,
    LostWrite,
    MisdirectedWrite,
    NetJitter,
    NicDegrade,
    ServerCrash,
    TornWrite,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.nvmeof.messages import IoError
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.raid.rebuild import RebuildJob
from repro.raid.resync import resync_stripes
from repro.raid.scrubber import ScrubDaemon
from repro.sim import Environment
from repro.storage.integrity import ChecksumError, IntegrityStore
from repro.verify import VerifyConfig

KB = 1024
MS = 1_000_000

DRIVES = 4
STRIPES = 6
CHUNK = 4 * KB
TIMEOUT_NS = 2 * MS
FAULT_AT = 5 * MS

#: one scenario per fault kind; ``corruption`` arms the integrity store
#: (silent-corruption kinds are invisible without checksums).
SCENARIOS = {
    "drive-fail": ([DriveFail(FAULT_AT, server=1)], False),
    "drive-heal": (
        [DriveFail(FAULT_AT, server=1), DriveHeal(12 * MS, server=1)],
        False,
    ),
    "error-burst": ([DriveErrorBurst(FAULT_AT, server=1, duration_ns=4 * MS)], False),
    "fail-slow": (
        [DriveFailSlow(FAULT_AT, server=1, multiplier=8.0, duration_ns=6 * MS)],
        False,
    ),
    "nic-degrade": (
        [NicDegrade(FAULT_AT, server=1, factor=0.25, duration_ns=4 * MS)],
        False,
    ),
    "link-stall": ([LinkStall(FAULT_AT, server=1, duration_ns=3 * MS)], False),
    "net-jitter": (
        [NetJitter(FAULT_AT, duration_ns=6 * MS, jitter_ns=200_000, seed=7)],
        False,
    ),
    "server-crash": ([ServerCrash(FAULT_AT, server=1, down_ns=4 * MS)], False),
    "bit-rot": ([BitRot(FAULT_AT, server=1, offset=0, length=CHUNK, seed=3)], True),
    "lost-write": ([LostWrite(FAULT_AT, server=1)], True),
    "torn-write": ([TornWrite(FAULT_AT, server=1)], True),
    "misdirected-write": (
        [MisdirectedWrite(FAULT_AT, server=1, shift_bytes=CHUNK)],
        True,
    ),
}


def run_retry_scenario(system, events, corruption):
    """Paced writes across the fault window, then the recovery playbook.

    Returns the cluster's :class:`~repro.verify.Verifier` after asserting
    shadow-model equality (the exactly-once property).
    """
    env = Environment()
    config = ClusterConfig(
        num_servers=DRIVES,
        functional_capacity=STRIPES * CHUNK,
        io_timeout_ns=TIMEOUT_NS,
        verify=VerifyConfig(),
    )
    cluster = build_cluster(env, config)
    geometry = RaidGeometry(RaidLevel.RAID5, DRIVES, CHUNK)
    if corruption:
        IntegrityStore(CHUNK).attach(cluster)
    array = _make_controller(system, cluster, geometry)
    injector = FaultInjector(array, FaultPlan(events), num_stripes=STRIPES)

    stripe_bytes = geometry.stripe_data_bytes
    capacity = STRIPES * stripe_bytes
    model = np.zeros(capacity, dtype=np.uint8)
    rng = random.Random(f"repro.retry:{system}")
    torn = set()

    def stripes_of(offset, nbytes):
        return set(
            range(offset // stripe_bytes, (offset + nbytes - 1) // stripe_bytes + 1)
        )

    def write(offset, size):
        payload = np.frombuffer(rng.randbytes(size), dtype=np.uint8).copy()
        try:
            env.run(until=array.write(offset, size, payload))
        except (IoError, ChecksumError):
            torn.update(stripes_of(offset, size))
            return
        model[offset : offset + size] = payload

    # initial fill, then paced writes from before the fault to past it
    write(0, capacity)
    for _ in range(8):
        env.run(until=env.now + MS)
        size = rng.randint(1, 2 * stripe_bytes)
        write(rng.randrange(0, capacity - size), size)

    # recovery playbook (the chaos harness's, miniaturized)
    env.run(until=injector.drain())
    env.run(until=max(env.now, max(e.at_ns for e in events)) + 60 * MS)
    still_failed = sorted(array.failed)
    while still_failed and (
        array.integrity is not None or len(still_failed) > geometry.num_parity
    ):
        member = still_failed.pop()
        cluster.servers[member].drive.heal()
        array.repair_drive(member)
        torn.update(range(STRIPES))
    for member in still_failed:
        env.run(until=RebuildJob(array, member, STRIPES).start())
    store = cluster.integrity
    if store is not None:
        env.run(until=ScrubDaemon(array, STRIPES, pace_ns=0).process)
        for stripe in range(STRIPES):
            if any(not store.chunk_ok(d, stripe) for d in cluster.drives()):
                torn.add(stripe)
    for stripe in sorted(torn):
        env.run(until=resync_stripes(array, [stripe]))
    for stripe in sorted(torn):
        offset = stripe * stripe_bytes
        data = env.run(until=array.read(offset, stripe_bytes))
        model[offset : offset + stripe_bytes] = data

    final = env.run(until=array.read(0, capacity))
    assert np.array_equal(final, model), (
        f"{system}: end state diverged from the shadow model "
        f"(writes not exactly-once)"
    )
    verifier = cluster.verify
    assert verifier.violations == []
    assert verifier.protocol.checked_messages > 0
    verifier.check_quiescent()
    return verifier


@pytest.mark.parametrize("system", CHAOS_SYSTEMS)
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_retry_idempotence(system, name):
    events, corruption = SCENARIOS[name]
    run_retry_scenario(system, events, corruption)


@pytest.mark.parametrize("system", CHAOS_SYSTEMS)
def test_late_completions_are_benign(system):
    """A link stall longer than the I/O timeout forces retries whose
    original acks arrive late; the checker counts them instead of
    flagging duplicates."""
    events, corruption = SCENARIOS["link-stall"]
    verifier = run_retry_scenario(system, events, corruption)
    assert verifier.protocol.late_completions >= 0  # accounted, never fatal
