"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Interrupt, SimulationError


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(100)
        return env.now

    p = env.process(proc())
    assert env.run(until=p) == 100
    assert env.now == 100


def test_timeout_value_passthrough():
    env = Environment()

    def proc():
        got = yield env.timeout(5, value="hello")
        return got

    assert env.run(until=env.process(proc())) == "hello"


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(delay, tag):
        yield env.timeout(delay)
        order.append((env.now, tag))

    env.process(proc(30, "c"))
    env.process(proc(10, "a"))
    env.process(proc(20, "b"))
    env.run()
    assert order == [(10, "a"), (20, "b"), (30, "c")]


def test_fifo_order_for_simultaneous_events():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(7)
        order.append(tag)

    for tag in "abcd":
        env.process(proc(tag))
    env.run()
    assert order == list("abcd")


def test_process_waits_on_process():
    env = Environment()

    def child():
        yield env.timeout(42)
        return "done"

    def parent():
        result = yield env.process(child())
        return (env.now, result)

    assert env.run(until=env.process(parent())) == (42, "done")


def test_yield_already_completed_event():
    env = Environment()

    def child():
        yield env.timeout(5)
        return 99

    def parent(c):
        yield env.timeout(50)  # child finished long ago
        value = yield c
        return (env.now, value)

    c = env.process(child())
    assert env.run(until=env.process(parent(c))) == (50, 99)


def test_event_succeed_manually():
    env = Environment()
    gate = env.event()

    def opener():
        yield env.timeout(10)
        gate.succeed("open")

    def waiter():
        value = yield gate
        return (env.now, value)

    env.process(opener())
    assert env.run(until=env.process(waiter())) == (10, "open")


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failure_propagates_into_waiter():
    env = Environment()
    gate = env.event()

    def failer():
        yield env.timeout(1)
        gate.fail(ValueError("boom"))

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            return f"caught {exc}"

    env.process(failer())
    assert env.run(until=env.process(waiter())) == "caught boom"


def test_unhandled_failure_raises_at_run():
    env = Environment()

    def failer():
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(failer())
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_all_of_waits_for_everything():
    env = Environment()

    def proc():
        results = yield AllOf(env, [env.timeout(10, "a"), env.timeout(30, "b")])
        return (env.now, sorted(results.values()))

    assert env.run(until=env.process(proc())) == (30, ["a", "b"])


def test_any_of_returns_on_first():
    env = Environment()

    def proc():
        yield AnyOf(env, [env.timeout(10, "fast"), env.timeout(99, "slow")])
        return env.now

    assert env.run(until=env.process(proc())) == 10


def test_all_of_empty_is_immediate():
    env = Environment()

    def proc():
        yield AllOf(env, [])
        return env.now

    assert env.run(until=env.process(proc())) == 0


def test_interrupt_wakes_process():
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(1_000_000)
            return "slept"
        except Interrupt as intr:
            return ("interrupted", env.now, intr.cause)

    def interrupter(target):
        yield env.timeout(25)
        target.interrupt("wake up")

    target = env.process(sleeper())
    env.process(interrupter(target))
    assert env.run(until=target) == ("interrupted", 25, "wake up")


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_run_until_time_stops_clock():
    env = Environment()
    ticks = []

    def ticker():
        while True:
            yield env.timeout(10)
            ticks.append(env.now)

    env.process(ticker())
    env.run(until=105)
    assert env.now == 105
    assert ticks == [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]


def test_run_until_untriggerable_event_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.run(until=env.event())


def test_nested_processes_deep_chain():
    env = Environment()

    def level(n):
        if n == 0:
            yield env.timeout(1)
            return 0
        result = yield env.process(level(n - 1))
        return result + 1

    assert env.run(until=env.process(level(50))) == 50
    assert env.now == 1


def test_yield_non_event_fails_process_and_wakes_waiters():
    # Regression: the non-event-yield path used to throw into the generator
    # but discard the outcome, so the Process event never triggered and
    # waiters leaked silently.
    env = Environment()

    def bad():
        yield "not an event"

    def parent():
        try:
            yield env.process(bad())
        except SimulationError as exc:
            return f"caught {exc}"
        return "not raised"

    result = env.run(until=env.process(parent()))
    assert result.startswith("caught")
    assert "non-event" in result


def test_yield_non_event_unwaited_still_raises():
    env = Environment()

    def bad():
        yield env.timeout(1)
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_yield_non_event_process_can_recover():
    env = Environment()

    def sloppy():
        try:
            yield "oops"
        except SimulationError:
            yield env.timeout(10)
            return "recovered"

    assert env.run(until=env.process(sloppy())) == "recovered"
    assert env.now == 10


def test_yield_non_event_return_value_propagates():
    env = Environment()

    def stops_cleanly():
        try:
            yield object()
        except SimulationError:
            return "clean exit"

    assert env.run(until=env.process(stops_cleanly())) == "clean exit"


def test_horizon_drains_same_timestamp_events():
    # run(until=t) must process every event with timestamp <= t, including
    # zero-delay cascades spawned at the horizon itself.
    env = Environment()
    fired = []

    def chain():
        yield env.timeout(100)
        fired.append("first")
        yield env.timeout(0)
        fired.append("second")
        yield env.timeout(0)
        fired.append("third")
        yield env.timeout(1)
        fired.append("past-horizon")

    env.process(chain())
    env.run(until=100)
    assert fired == ["first", "second", "third"]
    assert env.now == 100
    env.run(until=101)
    assert fired == ["first", "second", "third", "past-horizon"]


def test_horizon_split_matches_uninterrupted_run():
    # Splitting a run at any horizon must not reorder events.
    def build(split):
        env = Environment()
        log = []

        def proc(seed):
            for i in range(6):
                yield env.timeout((seed * 5 + i * 3) % 17 + 1)
                log.append((env.now, seed, i))

        for seed in range(4):
            env.process(proc(seed))
        if split is None:
            env.run()
        else:
            env.run(until=split)
            env.run()
        return log

    uninterrupted = build(None)
    for split in (1, 7, 13, 40):
        assert build(split) == uninterrupted


def test_horizon_equal_to_now_drains_pending():
    env = Environment()
    fired = []

    def proc():
        yield env.timeout(0)
        fired.append(env.now)

    env.process(proc())
    env.run(until=0)
    assert fired == [0]
    assert env.now == 0


def test_determinism_two_runs_identical():
    def build():
        env = Environment()
        log = []

        def proc(seed):
            for i in range(5):
                yield env.timeout((seed * 7 + i * 13) % 29 + 1)
                log.append((env.now, seed, i))

        for seed in range(4):
            env.process(proc(seed))
        env.run()
        return log

    assert build() == build()


def test_run_until_timeout_event_runs_to_its_horizon():
    """Regression: timeouts are pre-succeeded at creation, so the
    event-wait branch of ``run`` used to see ``until=env.timeout(n)`` as
    already triggered and return instantly having simulated nothing."""
    env = Environment()
    fired = []

    def proc():
        yield env.timeout(1_000)
        fired.append(env.now)

    env.process(proc())
    env.run(until=env.timeout(5_000))
    assert fired == [1_000]
    assert env.now == 5_000
    # a timer that already dispatched is genuinely "triggered": no-op
    stale = env.timeout(1_000)
    env.run(until=10_000)
    env.run(until=stale)
    assert env.now == 10_000
