"""Property-based tests of the simulation kernel and network model.

These pin down the conservation laws the whole evaluation rests on:
FIFO bandwidth channels never create or destroy capacity, event ordering
is deterministic, and transfers account bytes exactly once per direction.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Fabric, Nic
from repro.sim import BandwidthChannel, Environment
from repro.sim.resources import NS_PER_S


class TestChannelConservation:
    @given(
        sizes=st.lists(st.integers(1, 1_000_000), min_size=1, max_size=30),
        gaps=st.lists(st.integers(0, 10_000), min_size=1, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_busy_time_equals_total_work(self, sizes, gaps):
        """Whatever the arrival pattern, total channel busy time equals the
        sum of service times (work conservation)."""
        env = Environment()
        channel = BandwidthChannel(env, rate_bytes_per_s=NS_PER_S)

        def submitter():
            for size, gap in zip(sizes, gaps + [0] * len(sizes)):
                channel.transfer(size)
                if gap:
                    yield env.timeout(gap)
            if True:
                yield env.timeout(0)

        env.process(submitter())
        env.run()
        assert channel.busy_ns == sum(sizes[: channel.ops])
        assert channel.bytes_transferred == sum(sizes[: channel.ops])

    @given(sizes=st.lists(st.integers(1, 500_000), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_makespan_lower_bounded_by_work(self, sizes):
        """All-at-once submission finishes exactly at total work / rate."""
        env = Environment()
        channel = BandwidthChannel(env, rate_bytes_per_s=NS_PER_S)
        events = [channel.transfer(s) for s in sizes]

        def waiter():
            for event in events:
                yield event
            return env.now

        makespan = env.run(until=env.process(waiter()))
        assert makespan == sum(sizes)

    @given(
        sizes=st.lists(st.integers(1, 200_000), min_size=2, max_size=16),
        parallelism=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_parallel_servers_conserve_aggregate_rate(self, sizes, parallelism):
        env = Environment()
        channel = BandwidthChannel(
            env, rate_bytes_per_s=NS_PER_S, parallelism=parallelism
        )
        events = [channel.transfer(s) for s in sizes]

        def waiter():
            for event in events:
                yield event
            return env.now

        makespan = env.run(until=env.process(waiter()))
        total = sum(sizes)
        # aggregate throughput cannot exceed the channel rate, and with
        # enough work the makespan is within one max-job of optimal
        assert makespan >= total
        assert makespan <= total + max(sizes) * parallelism


class TestNetworkConservation:
    @given(
        sizes=st.lists(st.integers(64, 500_000), min_size=1, max_size=20),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_bytes_accounted_once_per_direction(self, sizes, seed):
        import random

        env = Environment()
        fabric = Fabric(env, propagation_ns=0, rdma_op_ns=0)
        a = Nic(env, 1e9, name="a")
        b = Nic(env, 1e9, name="b")
        conn = fabric.connect(a, b)
        rng = random.Random(seed)
        sent_a = sent_b = 0
        for size in sizes:
            if rng.random() < 0.5:
                conn.a.rdma_write(size)
                sent_a += size
            else:
                conn.b.rdma_write(size)
                sent_b += size
        env.run()
        assert a.tx_bytes == sent_a
        assert b.rx_bytes == sent_a
        assert b.tx_bytes == sent_b
        assert a.rx_bytes == sent_b

    @given(sizes=st.lists(st.integers(1_000, 200_000), min_size=2, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_slow_receiver_is_the_bottleneck(self, sizes):
        env = Environment()
        fabric = Fabric(env, propagation_ns=0, rdma_op_ns=0)
        fast = Nic(env, 4e9, name="fast")
        slow = Nic(env, 1e9, name="slow")
        conn = fabric.connect(fast, slow)
        events = [conn.a.rdma_write(s) for s in sizes]

        def waiter():
            for event in events:
                yield event
            return env.now

        makespan = env.run(until=env.process(waiter()))
        # the 1 GB/s receiver bounds the flow: 1 byte per ns
        assert makespan >= sum(sizes)


class TestDeterminism:
    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_identical_runs_identical_schedules(self, seed):
        def run():
            import random

            env = Environment()
            channel = BandwidthChannel(env, rate_bytes_per_s=NS_PER_S)
            rng = random.Random(seed)
            log = []

            def worker(tag):
                for _ in range(5):
                    yield channel.transfer(rng.randrange(1, 10_000))
                    log.append((tag, env.now))

            for tag in range(4):
                env.process(worker(tag))
            env.run()
            return log

        assert run() == run()
