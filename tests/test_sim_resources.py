"""Unit tests for stores, capacity resources and bandwidth channels."""

import pytest

from repro.sim import BandwidthChannel, CapacityResource, Environment, Store
from repro.sim.resources import NS_PER_S


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)

        def proc():
            store.put("x")
            item = yield store.get()
            return item

        assert env.run(until=env.process(proc())) == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def producer():
            yield env.timeout(40)
            store.put("late")

        def consumer():
            item = yield store.get()
            return (env.now, item)

        env.process(producer())
        assert env.run(until=env.process(consumer())) == (40, "late")

    def test_fifo_ordering(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(tag):
            item = yield store.get()
            got.append((tag, item))

        def producer():
            yield env.timeout(1)
            for i in range(3):
                store.put(i)

        for tag in "abc":
            env.process(consumer(tag))
        env.process(producer())
        env.run()
        assert got == [("a", 0), ("b", 1), ("c", 2)]

    def test_len_counts_items(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestCapacityResource:
    def test_capacity_limits_concurrency(self):
        env = Environment()
        res = CapacityResource(env, capacity=2)
        active = []
        peak = []

        def worker(i):
            yield res.request()
            active.append(i)
            peak.append(len(active))
            yield env.timeout(10)
            active.remove(i)
            res.release()

        for i in range(5):
            env.process(worker(i))
        env.run()
        assert max(peak) == 2
        assert env.now == 30  # 5 jobs, 2 wide, 10ns each

    def test_release_without_request_raises(self):
        env = Environment()
        res = CapacityResource(env, capacity=1)
        with pytest.raises(RuntimeError):
            res.release()

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            CapacityResource(env, capacity=0)


class TestBandwidthChannel:
    def test_single_transfer_service_time(self):
        env = Environment()
        # 1 GB/s => 1 byte per ns
        ch = BandwidthChannel(env, rate_bytes_per_s=NS_PER_S)

        def proc():
            yield ch.transfer(4096)
            return env.now

        assert env.run(until=env.process(proc())) == 4096

    def test_per_op_overhead_added(self):
        env = Environment()
        ch = BandwidthChannel(env, rate_bytes_per_s=NS_PER_S, per_op_overhead_ns=100)

        def proc():
            yield ch.transfer(1000)
            return env.now

        assert env.run(until=env.process(proc())) == 1100

    def test_fifo_serialization(self):
        env = Environment()
        ch = BandwidthChannel(env, rate_bytes_per_s=NS_PER_S)
        done = []

        def proc(tag, size):
            yield ch.transfer(size)
            done.append((tag, env.now))

        env.process(proc("a", 100))
        env.process(proc("b", 50))
        env.run()
        # Both submitted at t=0; FIFO: a finishes at 100, b at 150.
        assert done == [("a", 100), ("b", 150)]

    def test_aggregate_rate_preserved_under_load(self):
        env = Environment()
        ch = BandwidthChannel(env, rate_bytes_per_s=NS_PER_S)

        def proc():
            events = [ch.transfer(1000) for _ in range(10)]
            for e in events:
                yield e
            return env.now

        # 10 kB at 1 B/ns => exactly 10_000 ns regardless of batching.
        assert env.run(until=env.process(proc())) == 10_000

    def test_parallelism_splits_rate(self):
        env = Environment()
        ch = BandwidthChannel(env, rate_bytes_per_s=NS_PER_S, parallelism=4)

        def one():
            yield ch.transfer(1000)
            return env.now

        # A single stream only gets 1/4 of the rate.
        assert env.run(until=env.process(one())) == 4000

    def test_parallelism_aggregate_throughput(self):
        env = Environment()
        ch = BandwidthChannel(env, rate_bytes_per_s=NS_PER_S, parallelism=4)
        done = []

        def proc(i):
            yield ch.transfer(1000)
            done.append(env.now)

        for i in range(4):
            env.process(proc(i))
        env.run()
        # 4 concurrent streams use all 4 servers: all done at 4000.
        assert done == [4000, 4000, 4000, 4000]

    def test_queue_delay_reflects_backlog(self):
        env = Environment()
        ch = BandwidthChannel(env, rate_bytes_per_s=NS_PER_S)

        def proc():
            ch.transfer(500)
            assert ch.queue_delay_ns() == 500
            assert ch.backlog_ns() == 500
            yield env.timeout(200)
            assert ch.queue_delay_ns() == 300

        env.run(until=env.process(proc()))

    def test_accounting(self):
        env = Environment()
        ch = BandwidthChannel(env, rate_bytes_per_s=NS_PER_S)

        def proc():
            yield ch.transfer(100)
            yield ch.transfer(200)

        env.run(until=env.process(proc()))
        assert ch.bytes_transferred == 300
        assert ch.ops == 2
        assert ch.busy_ns == 300
        assert ch.utilization(600) == pytest.approx(0.5)
        ch.reset_accounting()
        assert ch.bytes_transferred == 0

    def test_rate_is_adjustable(self):
        env = Environment()
        ch = BandwidthChannel(env, rate_bytes_per_s=NS_PER_S)
        ch.rate_bytes_per_s = NS_PER_S / 2

        def proc():
            yield ch.transfer(100)
            return env.now

        assert env.run(until=env.process(proc())) == 200

    def test_invalid_args(self):
        env = Environment()
        with pytest.raises(ValueError):
            BandwidthChannel(env, rate_bytes_per_s=0)
        ch = BandwidthChannel(env, rate_bytes_per_s=1.0)
        with pytest.raises(ValueError):
            ch.transfer(-1)


class TestCancelSafety:
    """Interrupting a waiter must never leak slots or items.

    Regression tests for the PR-1 fast-path bug: a request cancelled
    between grant and resume bypassed the waiter bookkeeping, leaking the
    slot (or the store item) forever.  ``Event._abandoned`` now hands the
    grant back; the kernel sanitizer's leaked-hold check pins it.
    """

    def test_capacity_cancel_while_queued(self):
        env = Environment()
        resource = CapacityResource(env, capacity=1)
        order = []

        def holder():
            yield resource.request()
            yield env.timeout(10)
            resource.release()

        def waiter(tag):
            try:
                yield resource.request()
            except Exception:
                order.append((tag, "interrupted"))
                return
            order.append((tag, env.now))
            resource.release()

        env.process(holder())
        victim = env.process(waiter("victim"))
        env.process(waiter("heir"))

        def killer():
            yield env.timeout(5)  # before the release at t=10
            victim.interrupt("cancelled")

        env.process(killer())
        env.run()
        # the heir — not the cancelled victim — got the slot at release time
        assert order == [("victim", "interrupted"), ("heir", 10)]
        assert resource.in_use == 0
        assert not resource._waiters

    def test_capacity_cancel_between_grant_and_resume(self):
        env = Environment()
        resource = CapacityResource(env, capacity=1)
        order = []

        def holder():
            yield resource.request()
            yield env.timeout(10)
            resource.release()  # grants the victim at t=10 ...

        def waiter(tag):
            try:
                yield resource.request()
            except Exception:
                order.append((tag, "interrupted"))
                return
            order.append((tag, env.now))
            resource.release()

        env.process(holder())
        victim = env.process(waiter("victim"))
        env.process(waiter("heir"))

        def killer():
            yield env.timeout(10)  # ... and the interrupt lands before
            victim.interrupt("cancelled")  # the victim ever resumes

        env.process(killer())
        env.run()
        # the heir inherited the slot at t=10 (resuming just before the
        # victim's interrupt lands); nothing leaked
        assert sorted(order) == [("heir", 10), ("victim", "interrupted")]
        assert resource.in_use == 0

    def test_store_cancel_while_queued(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter(tag):
            try:
                item = yield store.get()
            except Exception:
                got.append((tag, "interrupted"))
                return
            got.append((tag, item))

        victim = env.process(getter("victim"))
        env.process(getter("heir"))

        def producer():
            yield env.timeout(10)
            store.put("item")

        def killer():
            yield env.timeout(5)
            victim.interrupt("cancelled")

        env.process(producer())
        env.process(killer())
        env.run()
        # the item goes to the heir, not into the cancelled getter's void
        assert got == [("victim", "interrupted"), ("heir", "item")]
        assert len(store) == 0

    def test_store_cancel_between_grant_and_resume(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter(tag):
            try:
                item = yield store.get()
            except Exception:
                got.append((tag, "interrupted"))
                return
            got.append((tag, item))

        victim = env.process(getter("victim"))

        def producer():
            yield env.timeout(10)
            store.put("item")  # grants the victim at t=10 ...

        def killer():
            yield env.timeout(10)  # ... then the interrupt lands first
            victim.interrupt("cancelled")

        env.process(producer())
        env.process(killer())
        env.run()
        assert got == [("victim", "interrupted")]
        # the granted item went back into the store, not into the void
        assert len(store) == 1

    def test_cancelled_paths_pass_leak_check(self):
        from repro.verify import KernelSanitizer

        env = Environment()
        sanitizer = KernelSanitizer(env)
        resource = CapacityResource(env, capacity=1, name="slots")
        sanitizer.watch_resource(resource)

        def holder():
            yield resource.request()
            yield env.timeout(10)
            resource.release()

        def victim_proc():
            try:
                yield resource.request()
            except Exception:
                return

        env.process(holder())
        victim = env.process(victim_proc())

        def killer():
            yield env.timeout(10)
            victim.interrupt("cancelled")

        env.process(killer())
        env.run()  # the armed run loop leak-checks at drain
        assert sanitizer.violations == []
        sanitizer.check_quiescent()
