"""Cross-variant equivalence for the stateless-target controller.

Three pins on the design-space claim (design-space axis 3):

* on an unarmed single-array testbed, full-stripe writes through the
  stateless-target controller produce a **FioResult equal** to stock
  dRAID's — the host-computed full-stripe path is shared, so the two
  variants are operation-for-operation identical for that traffic;
* the stateless target's bdevs are **pure data plane**: across healthy,
  partial-write and degraded traffic every command on the wire is a
  plain NVMe-oF READ or WRITE — never a PartialWrite/Parity/
  Reconstruction protocol command;
* with the verifier armed, a **mixed fault schedule** (the differential
  fuzzer's op/fault interleaving) runs protocol-checker clean and
  byte-exact against the shadow model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.draid.host import DraidArray
from repro.draid.stateless import StatelessTargetDraid
from repro.nvmeof.messages import NvmeOfCommand, Opcode
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment
from repro.verify.fuzz import make_schedule, run_schedule
from repro.workloads import FioWorkload

KB = 1024
CHUNK = 16 * KB
DRIVES = 6
STRIPES = 16


def _build(cls, functional: bool):
    env = Environment()
    cluster = build_cluster(
        env,
        ClusterConfig(
            num_servers=DRIVES,
            functional_capacity=STRIPES * CHUNK if functional else 0,
        ),
    )
    geometry = RaidGeometry(RaidLevel.RAID5, DRIVES, CHUNK)
    return cls(cluster, geometry)


def test_full_stripe_fio_result_equal_to_stateful():
    """Full-stripe-aligned write workload: FioResult equality, field for
    field, between stock dRAID and the stateless-target variant."""
    results = []
    for cls in (DraidArray, StatelessTargetDraid):
        array = _build(cls, functional=False)
        g = array.geometry
        fio = FioWorkload(
            array,
            g.stripe_data_bytes,  # every I/O is exactly one full stripe
            read_fraction=0.0,
            queue_depth=8,
            capacity=STRIPES * g.stripe_data_bytes,
            seed=77,
        )
        results.append(fio.run(warmup_ns=1_000_000, measure_ns=8_000_000))
    stateful, stateless = results
    assert stateful == stateless
    assert stateful.ops_completed > 0


class _OpcodeSpy:
    """Transparent wrapper recording every command a host end sends."""

    def __init__(self, end, seen):
        self._end = end
        self._seen = seen

    def send(self, cmd):
        self._seen.append(cmd)
        return self._end.send(cmd)

    def __getattr__(self, name):
        return getattr(self._end, name)


def test_stateless_bdevs_see_only_plain_io():
    """Healthy, partial and degraded traffic: nothing but READ/WRITE on
    the wire — the target never holds protocol state."""
    array = _build(StatelessTargetDraid, functional=True)
    env = array.env
    g = array.geometry
    seen = []
    array.host_ends = [_OpcodeSpy(end, seen) for end in array.host_ends]
    rng = np.random.default_rng(3)
    capacity = STRIPES * g.stripe_data_bytes

    def payload(size):
        return rng.integers(0, 256, size=size, dtype=np.uint8)

    shadow = np.zeros(capacity, dtype=np.uint8)

    def write(offset, size):
        data = payload(size)
        env.run(until=array.write(offset, size, data))
        shadow[offset : offset + size] = data

    write(0, capacity)  # full stripes
    write(CHUNK // 2, CHUNK)  # partial, unaligned
    write(3 * g.stripe_data_bytes + CHUNK, 2 * CHUNK)  # partial RMW shape
    array.fail_drive(2)
    write(CHUNK, 3 * CHUNK)  # degraded write
    data = env.run(until=array.read(0, 5 * g.stripe_data_bytes))  # degraded read
    assert np.array_equal(data, shadow[: 5 * g.stripe_data_bytes])
    assert seen, "spy saw no traffic"
    for cmd in seen:
        assert isinstance(cmd, NvmeOfCommand)
        assert cmd.opcode in (Opcode.READ, Opcode.WRITE)


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_protocol_checker_clean_over_mixed_fault_schedule(seed):
    """Armed verifier + the fuzzer's op/fault interleaving on draid-st:
    no invariant violations, shadow-model byte equality, clean scrub."""
    schedule = make_schedule("draid-st", seed=seed, num_ops=14)
    assert any(op.kind == "fail" for op in schedule.ops), "no fault ops drawn"
    outcome = run_schedule(schedule, verify=True)
    assert outcome.ok, outcome.detail
    assert outcome.verified and outcome.scrub_clean
    assert outcome.checked_messages > 0
