"""Tests for the NVMe drive model."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.storage import DELL_AGN_MU, DriveProfile, NvmeDrive
from repro.storage.drive import DriveFailedError

MB = 1_000_000


def make_drive(env, read_bw=1000 * MB, write_bw=500 * MB, rlat=0, wlat=0, par=1, cap=0):
    profile = DriveProfile(
        name="test",
        read_bw_bytes_per_s=read_bw,
        write_bw_bytes_per_s=write_bw,
        read_latency_ns=rlat,
        write_latency_ns=wlat,
        parallelism=par,
    )
    return NvmeDrive(env, profile, functional_capacity=cap)


class TestTiming:
    def test_read_service_time(self):
        env = Environment()
        drive = make_drive(env, read_bw=1000 * MB)  # 1 B/ns

        def proc():
            yield drive.read(0, 128_000)
            return env.now

        assert env.run(until=env.process(proc())) == 128_000

    def test_access_latency_added_but_not_capacity(self):
        env = Environment()
        drive = make_drive(env, read_bw=1000 * MB, rlat=80_000)
        done = []

        def proc(i):
            yield drive.read(0, 100_000)
            done.append(env.now)

        env.process(proc(0))
        env.process(proc(1))
        env.run()
        # FIFO channel: transfers at 100k and 200k; +80k latency each.
        # Latency overlaps across ops (does not serialize throughput).
        assert done == [180_000, 280_000]

    def test_write_slower_than_read(self):
        env = Environment()
        drive = make_drive(env, read_bw=1000 * MB, write_bw=500 * MB)
        times = {}

        def proc():
            yield drive.read(0, 100_000)
            times["read"] = env.now
            yield drive.write(0, 100_000)
            times["write"] = env.now - times["read"]

        env.run(until=env.process(proc()))
        assert times["read"] == 100_000
        assert times["write"] == 200_000

    def test_mixed_read_write_share_channel(self):
        """Reads and writes serialize on the same internal channel, giving
        the harmonic-mean behaviour the paper's drive-bound RMW shows."""
        env = Environment()
        drive = make_drive(env, read_bw=1000 * MB, write_bw=500 * MB)

        def proc():
            r = drive.read(0, 100_000)
            w = drive.write(0, 100_000)
            yield r
            yield w
            return env.now

        # read occupies 100k, write 200k, FIFO => total 300k
        assert env.run(until=env.process(proc())) == 300_000

    def test_parallelism_aggregate(self):
        env = Environment()
        drive = make_drive(env, read_bw=1000 * MB, par=4)
        done = []

        def proc(i):
            yield drive.read(0, 100_000)
            done.append(env.now)

        for i in range(4):
            env.process(proc(i))
        env.run()
        # 4 servers at 250 MB/s each: all finish at 400k
        assert done == [400_000] * 4

    def test_stats_accounting(self):
        env = Environment()
        drive = make_drive(env)

        def proc():
            yield drive.read(0, 1000)
            yield drive.write(0, 2000)

        env.run(until=env.process(proc()))
        assert drive.stats.read_ops == 1
        assert drive.stats.write_ops == 1
        assert drive.stats.bytes_read == 1000
        assert drive.stats.bytes_written == 2000
        drive.stats.reset()
        assert drive.stats.bytes_read == 0


class TestFunctionalMode:
    def test_write_then_read_roundtrip(self):
        env = Environment()
        drive = make_drive(env, cap=1 << 20)
        payload = bytes(range(256))

        def proc():
            yield drive.write(4096, 256, payload)
            data = yield drive.read(4096, 256)
            return bytes(data)

        assert env.run(until=env.process(proc())) == payload

    def test_unwritten_reads_zero(self):
        env = Environment()
        drive = make_drive(env, cap=4096)

        def proc():
            data = yield drive.read(0, 16)
            return bytes(data)

        assert env.run(until=env.process(proc())) == b"\x00" * 16

    def test_functional_write_requires_data(self):
        env = Environment()
        drive = make_drive(env, cap=4096)
        with pytest.raises(ValueError):
            drive.write(0, 16)

    def test_out_of_range_io_rejected(self):
        env = Environment()
        drive = make_drive(env, cap=4096)
        with pytest.raises(ValueError):
            drive.read(4090, 16)

    def test_peek(self):
        env = Environment()
        drive = make_drive(env, cap=4096)

        def proc():
            yield drive.write(8, 4, b"\x01\x02\x03\x04")

        env.run(until=env.process(proc()))
        assert drive.peek(8, 4).tolist() == [1, 2, 3, 4]

    def test_peek_requires_functional(self):
        env = Environment()
        drive = make_drive(env)
        with pytest.raises(RuntimeError):
            drive.peek(0, 1)


class TestFailure:
    def test_failed_drive_rejects_io(self):
        env = Environment()
        drive = make_drive(env)
        drive.fail()
        with pytest.raises(DriveFailedError):
            drive.read(0, 16)
        drive.repair()
        drive.read(0, 16)  # no raise

    def test_invalid_io(self):
        env = Environment()
        drive = make_drive(env)
        with pytest.raises(ValueError):
            drive.read(0, 0)
        with pytest.raises(ValueError):
            drive.read(-1, 16)


def test_default_profile_sanity():
    assert DELL_AGN_MU.write_bw_bytes_per_s == pytest.approx(2375 * MB)
    assert DELL_AGN_MU.read_bw_bytes_per_s > DELL_AGN_MU.write_bw_bytes_per_s
