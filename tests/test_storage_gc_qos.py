"""Tests for SSD garbage collection and §5.5 QoS rate limiting."""

import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.cluster.qos import RateLimitedDevice, TokenBucket
from repro.draid import DraidArray
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment
from repro.storage import DriveProfile, NvmeDrive
from repro.workloads import FioWorkload

MB = 1_000_000
KB = 1024


def gc_profile(after=1_000_000, pause=500_000):
    return DriveProfile(
        name="gc-test",
        read_bw_bytes_per_s=1000 * MB,
        write_bw_bytes_per_s=1000 * MB,
        read_latency_ns=0,
        write_latency_ns=0,
        gc_after_bytes_written=after,
        gc_pause_ns=pause,
    )


class TestGarbageCollection:
    def test_gc_triggers_after_write_budget(self):
        env = Environment()
        drive = NvmeDrive(env, gc_profile(after=1_000_000, pause=500_000))

        def proc():
            # 900 KB: under budget, no GC
            yield drive.write(0, 900_000)
            t1 = env.now
            assert drive.stats.gc_events == 0
            # +200 KB crosses the budget: GC stalls the channel
            yield drive.write(0, 200_000)
            return t1, env.now

        t1, t2 = env.run(until=env.process(proc()))
        assert drive.stats.gc_events == 1
        # 200 KB at 1 GB/s = 200 us, plus the 500 us GC pause
        assert t2 - t1 == pytest.approx(700_000, rel=0.01)

    def test_gc_budget_resets(self):
        env = Environment()
        drive = NvmeDrive(env, gc_profile(after=500_000, pause=100_000))

        def proc():
            for _ in range(10):
                yield drive.write(0, 250_000)

        env.run(until=env.process(proc()))
        assert drive.stats.gc_events == 5  # every second write

    def test_gc_stalls_reads_too(self):
        env = Environment()
        drive = NvmeDrive(env, gc_profile(after=100_000, pause=1_000_000))

        def proc():
            yield drive.write(0, 200_000)  # triggers GC
            start = env.now
            yield drive.read(0, 1000)
            return env.now - start

        # the read queues behind the GC stall
        elapsed = env.run(until=env.process(proc()))
        assert elapsed < 10_000  # write completion already includes stall

    def test_zero_gc_disables(self):
        env = Environment()
        drive = NvmeDrive(env, gc_profile(after=0, pause=0))

        def proc():
            for _ in range(20):
                yield drive.write(0, 1_000_000)

        env.run(until=env.process(proc()))
        assert drive.stats.gc_events == 0

    def test_with_gc_constructor(self):
        from repro.storage import DELL_AGN_MU

        gc = DELL_AGN_MU.with_gc(after_bytes=1 << 30, pause_ns=2_000_000)
        assert gc.gc_after_bytes_written == 1 << 30
        assert gc.name == DELL_AGN_MU.name
        assert DELL_AGN_MU.gc_after_bytes_written == 0  # original untouched

    def test_invalid_gc_params(self):
        with pytest.raises(ValueError):
            gc_profile(after=-1)

    def test_gc_inflates_tail_latency_under_raid(self):
        """GC pauses show up as p99 spikes — the effect SWAN/TTFLASH etc.
        attack (related work)."""

        def p99(gc: bool):
            env = Environment()
            profile = DriveProfile(
                name="d", read_bw_bytes_per_s=3200 * MB,
                write_bw_bytes_per_s=2375 * MB, read_latency_ns=80_000,
                write_latency_ns=18_000,
                gc_after_bytes_written=8 * MB if gc else 0,
                gc_pause_ns=3_000_000 if gc else 0,
            )
            cluster = build_cluster(env, ClusterConfig(num_servers=5, drive_profile=profile))
            array = DraidArray(cluster, RaidGeometry(RaidLevel.RAID5, 5, 256 * KB))
            fio = FioWorkload(array, 64 * KB, read_fraction=0.0, queue_depth=8)
            return fio.run(measure_ns=20_000_000).latency.p99_ns

        assert p99(gc=True) > 1.5 * p99(gc=False)


class TestTokenBucket:
    def test_burst_admitted_immediately(self):
        env = Environment()
        bucket = TokenBucket(env, rate_bytes_per_s=1e9, burst_bytes=1_000_000)

        def proc():
            yield bucket.acquire(1_000_000)
            return env.now

        assert env.run(until=env.process(proc())) == 0
        assert bucket.throttle_events == 0

    def test_sustained_rate_enforced(self):
        env = Environment()
        # 100 MB/s, 100 KB burst
        bucket = TokenBucket(env, rate_bytes_per_s=100 * MB, burst_bytes=100_000)

        def proc():
            for _ in range(10):
                yield bucket.acquire(100_000)
            return env.now

        elapsed = env.run(until=env.process(proc()))
        # 1 MB total at 100 MB/s = 10 ms minus the initial 1 ms burst credit
        assert elapsed == pytest.approx(9_000_000, rel=0.01)
        assert bucket.throttle_events > 0

    def test_tokens_replenish_when_idle(self):
        env = Environment()
        bucket = TokenBucket(env, rate_bytes_per_s=100 * MB, burst_bytes=100_000)

        def proc():
            yield bucket.acquire(100_000)  # drain the bucket
            yield env.timeout(2_000_000)  # idle 2 ms: bucket refills fully
            start = env.now
            yield bucket.acquire(100_000)
            return env.now - start

        assert env.run(until=env.process(proc())) == 0

    def test_invalid_params(self):
        env = Environment()
        with pytest.raises(ValueError):
            TokenBucket(env, rate_bytes_per_s=0)
        with pytest.raises(ValueError):
            TokenBucket(env, 1e9, burst_bytes=0)
        with pytest.raises(ValueError):
            TokenBucket(env, 1e9).acquire(0)


class TestRateLimitedDevice:
    def test_tenant_capped_at_budget(self):
        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=5))
        array = DraidArray(cluster, RaidGeometry(RaidLevel.RAID5, 5, 256 * KB))
        budget = 500 * MB
        limited = RateLimitedDevice(array, TokenBucket(env, budget, burst_bytes=1 << 20))
        fio = FioWorkload(limited, 128 * KB, read_fraction=1.0, queue_depth=16)
        result = fio.run(measure_ns=20_000_000)
        assert result.bandwidth_mb_s <= 560  # budget + burst slack
        assert result.bandwidth_mb_s >= 400

    def test_unlimited_tenant_unaffected_by_limited_one(self):
        """§5.5 isolation: tenant A's cap must not throttle tenant B."""
        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=5))
        array = DraidArray(cluster, RaidGeometry(RaidLevel.RAID5, 5, 256 * KB))
        limited = RateLimitedDevice(array, TokenBucket(env, 100 * MB))
        fio_a = FioWorkload(limited, 128 * KB, read_fraction=1.0, queue_depth=8, seed=1)
        fio_b = FioWorkload(array, 128 * KB, read_fraction=1.0, queue_depth=8, seed=2)
        stop = env.event()
        for _ in range(8):
            env.process(fio_a._worker(stop))
        result_b = fio_b.run(measure_ns=20_000_000)
        stop.succeed()
        # B gets the lion's share of the array
        assert result_b.bandwidth_mb_s > 2000

    def test_separate_read_write_budgets(self):
        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=5))
        array = DraidArray(cluster, RaidGeometry(RaidLevel.RAID5, 5, 256 * KB))
        limited = RateLimitedDevice(
            array,
            TokenBucket(env, 200 * MB),
            write_bucket=TokenBucket(env, 50 * MB),
        )
        fio = FioWorkload(limited, 128 * KB, read_fraction=0.0, queue_depth=8)
        result = fio.run(measure_ns=20_000_000)
        assert result.bandwidth_mb_s <= 80  # write budget binds
