"""Tests for windowed throughput timelines."""

import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.metrics.timeline import ThroughputTimeline, TimelineSample
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment
from repro.workloads import FioWorkload

KB = 1024


class TestTimelineSample:
    def test_rate(self):
        sample = TimelineSample(0, 1_000_000, 5_000_000)
        assert sample.rate_mb_s == pytest.approx(5000.0)

    def test_zero_window(self):
        assert TimelineSample(5, 5, 100).rate_mb_s == 0.0


class TestThroughputTimeline:
    def test_tracks_synthetic_counter(self):
        env = Environment()
        state = {"bytes": 0}

        def producer():
            # offset so increments never collide with sampling instants
            yield env.timeout(250_000)
            for _ in range(10):
                state["bytes"] += 1_000_000
                yield env.timeout(500_000)

        timeline = ThroughputTimeline(env, lambda: state["bytes"], window_ns=1_000_000)
        env.process(producer())
        env.run(until=5_000_001)
        timeline.stop()
        assert len(timeline.samples) == 5
        # 2 MB per 1 ms window = 2000 MB/s
        assert timeline.mean_mb_s() == pytest.approx(2000.0)
        assert timeline.peak_mb_s() == pytest.approx(2000.0)

    def test_detects_throughput_dip(self):
        env = Environment()
        state = {"bytes": 0}

        def producer():
            for window in range(10):
                rate = 0 if window == 5 else 1_000_000
                yield env.timeout(1_000_000)
                state["bytes"] += rate

        timeline = ThroughputTimeline(env, lambda: state["bytes"], window_ns=1_000_000)
        env.process(producer())
        env.run(until=10_000_001)
        timeline.stop()
        assert timeline.trough_mb_s() == 0.0
        assert timeline.peak_mb_s() > 900.0

    def test_against_real_workload(self):
        env = Environment()
        cluster = build_cluster(env, ClusterConfig(num_servers=5))
        array = DraidArray(cluster, RaidGeometry(RaidLevel.RAID5, 5, 256 * KB))
        timeline = ThroughputTimeline(
            env, lambda: cluster.host.nic.rx_bytes, window_ns=2_000_000
        )
        fio = FioWorkload(array, 128 * KB, read_fraction=1.0, queue_depth=16)
        fio.run(warmup_ns=1_000_000, measure_ns=10_000_000)
        timeline.stop()
        assert timeline.peak_mb_s() > 1000
        assert len(timeline.samples) >= 5

    def test_sparkline_shapes(self):
        env = Environment()
        state = {"bytes": 0}

        def producer():
            for window in range(20):
                yield env.timeout(1_000_000)
                state["bytes"] += window * 100_000

        timeline = ThroughputTimeline(env, lambda: state["bytes"], window_ns=1_000_000)
        env.process(producer())
        env.run(until=20_000_001)
        timeline.stop()
        line = timeline.sparkline(buckets=10)
        assert len(line) == 10
        # monotone-increasing rate => last glyph denser than first
        glyphs = " .:-=+*#%@"
        assert glyphs.index(line[-1]) > glyphs.index(line[0])

    def test_invalid_window(self):
        env = Environment()
        with pytest.raises(ValueError):
            ThroughputTimeline(env, lambda: 0, window_ns=0)
