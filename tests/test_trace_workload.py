"""Tests for open-loop trace replay and synthetic trace builders."""

import io

import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment
from repro.workloads.trace import (
    TraceRecord,
    TraceWorkload,
    bursty_trace,
    read_csv,
    scan_trace,
    steady_trace,
    write_csv,
)

KB = 1024


def make_array(drives=5):
    env = Environment()
    cluster = build_cluster(env, ClusterConfig(num_servers=drives))
    return DraidArray(cluster, RaidGeometry(RaidLevel.RAID5, drives, 64 * KB))


class TestTraceRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(0, "erase", 0, 4096)
        with pytest.raises(ValueError):
            TraceRecord(-1, "read", 0, 4096)
        with pytest.raises(ValueError):
            TraceRecord(0, "read", 0, 0)


class TestReplay:
    def test_open_loop_timing_respected(self):
        array = make_array()
        records = [
            TraceRecord(0, "read", 0, 64 * KB),
            TraceRecord(5_000_000, "read", 64 * KB, 64 * KB),
        ]
        result = TraceWorkload(array, records).run()
        assert result.completed == 2
        # makespan dominated by the second submission time
        assert result.makespan_ns >= 5_000_000

    def test_burst_overlaps_in_flight(self):
        array = make_array()
        # 16 simultaneous arrivals: all in flight together
        records = [TraceRecord(0, "read", i * 64 * KB, 64 * KB) for i in range(16)]
        workload = TraceWorkload(array, records)
        result = workload.run()
        assert result.peak_inflight == 16
        assert result.completed == 16

    def test_records_sorted_by_timestamp(self):
        array = make_array()
        records = [
            TraceRecord(9_000_000, "read", 0, 4 * KB),
            TraceRecord(0, "read", 0, 4 * KB),
        ]
        result = TraceWorkload(array, records).run()
        assert result.completed == 2

    def test_latency_grows_under_burst(self):
        """Open-loop bursts queue: later I/Os in a burst see higher latency
        than a lone I/O — the effect closed-loop FIO cannot show."""
        lone = TraceWorkload(make_array(), [TraceRecord(0, "write", 0, 128 * KB)]).run()
        burst_records = [
            TraceRecord(0, "write", i * 128 * KB, 128 * KB) for i in range(64)
        ]
        burst = TraceWorkload(make_array(), burst_records).run()
        assert burst.latency.p99_ns > 3 * lone.latency.p99_ns


class TestBuilders:
    def test_steady_trace_rate(self):
        records = steady_trace(
            duration_ns=100_000_000, iops=10_000, io_bytes=4096,
            capacity=1 << 30, seed=1,
        )
        # ~1000 arrivals expected for 100 ms at 10 kIOPS
        assert 800 < len(records) < 1200
        assert all(r.timestamp_ns < 100_000_000 for r in records)

    def test_steady_trace_mix(self):
        records = steady_trace(
            duration_ns=50_000_000, iops=20_000, io_bytes=4096,
            capacity=1 << 30, read_fraction=0.25, seed=2,
        )
        reads = sum(1 for r in records if r.op == "read")
        assert 0.15 < reads / len(records) < 0.35

    def test_bursty_trace_structure(self):
        records = bursty_trace(
            num_bursts=3, burst_iops=100_000, burst_ns=1_000_000,
            gap_ns=9_000_000, io_bytes=4096, capacity=1 << 30, seed=3,
        )
        assert records
        # no arrivals inside the gaps
        for r in records:
            phase = r.timestamp_ns % 10_000_000
            assert phase < 1_000_000

    def test_scan_trace_sequential(self):
        records = scan_trace(capacity=1 << 20, io_bytes=256 * KB, interarrival_ns=1000)
        assert [r.offset for r in records] == [0, 256 * KB, 512 * KB, 768 * KB]
        assert all(r.op == "read" for r in records)


class TestCsv:
    def test_roundtrip(self):
        records = steady_trace(10_000_000, 5_000, 4096, 1 << 24, seed=4)
        buffer = io.StringIO()
        write_csv(records, buffer)
        buffer.seek(0)
        parsed = read_csv(buffer)
        assert parsed == records

    def test_header_optional(self):
        parsed = read_csv(io.StringIO("100,read,0,4096\n200,write,4096,4096\n"))
        assert len(parsed) == 2
        assert parsed[1].op == "write"

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            read_csv(io.StringIO("1,read,0\n"))
