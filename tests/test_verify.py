"""Tests for the repro.verify sanitizer layer.

Three groups:

* kernel-sanitizer unit tests driving the invariants directly
  (deadlock, lock-order inversion, double release, leaked holds,
  past events);
* seeded-bug integration tests: deliberately broken controllers
  (monkeypatched duplicate acks, lost parity folds, over-fencing) must
  each raise :class:`InvariantViolation` naming the right invariant;
* zero-interference acceptance: an armed run produces the *same*
  ``FioResult`` as an unarmed run of the identical seed.
"""

import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.raid.locks import StripeLockManager
from repro.sim import CapacityResource, Environment
from repro.verify import InvariantViolation, KernelSanitizer, Verifier, VerifyConfig

KB = 1024


def armed_env():
    env = Environment()
    return env, KernelSanitizer(env)


class TestKernelSanitizer:
    def test_past_event_scheduling(self):
        env, sanitizer = armed_env()
        with pytest.raises(InvariantViolation) as exc:
            env._schedule(env.event(), delay=-5)
        assert exc.value.invariant == "past-event"

    def test_deadlock_reported_with_wait_graph(self):
        env, sanitizer = armed_env()
        locks = StripeLockManager(env)
        sanitizer.watch_locks(locks)

        def leaker():
            yield locks.acquire(7)
            # terminates holding stripe 7

        def waiter():
            yield locks.acquire(7)

        env.process(leaker(), name="leaker")
        env.process(waiter(), name="stuck")
        with pytest.raises(InvariantViolation) as exc:
            env.run()
        assert exc.value.invariant == "deadlock"
        assert "stuck" in exc.value.detail and "stripe 7" in exc.value.detail

    def test_deadlock_on_starved_until_event(self):
        env, sanitizer = armed_env()
        locks = StripeLockManager(env)
        sanitizer.watch_locks(locks)

        def leaker():
            yield locks.acquire(1)

        def waiter():
            yield locks.acquire(1)

        env.process(leaker(), name="leaker")
        stuck = env.process(waiter(), name="stuck")
        with pytest.raises(InvariantViolation) as exc:
            env.run(until=stuck)
        assert exc.value.invariant == "deadlock"

    def test_lock_order_inversion(self):
        env, sanitizer = armed_env()
        locks = StripeLockManager(env)
        sanitizer.watch_locks(locks)

        def forward():
            yield locks.acquire(0)
            yield locks.acquire(1)  # establishes order 0 -> 1
            locks.release(1)
            locks.release(0)

        def inverted():
            yield env.timeout(10)
            yield locks.acquire(1)
            yield locks.acquire(0)  # inversion: holds 1, wants 0
            locks.release(0)
            locks.release(1)

        env.process(forward(), name="forward")
        env.process(inverted(), name="inverted")
        with pytest.raises(InvariantViolation) as exc:
            env.run()
        assert exc.value.invariant == "lock-order-inversion"
        assert "inverted" in exc.value.detail

    def test_consistent_order_is_clean(self):
        env, sanitizer = armed_env()
        locks = StripeLockManager(env)
        sanitizer.watch_locks(locks)

        def job(name):
            yield locks.acquire(0)
            yield locks.acquire(1)
            yield env.timeout(5)
            locks.release(1)
            locks.release(0)

        env.process(job("a"), name="a")
        env.process(job("b"), name="b")
        env.run()
        assert sanitizer.violations == []
        sanitizer.check_quiescent()

    def test_double_release(self):
        env, sanitizer = armed_env()
        locks = StripeLockManager(env)
        sanitizer.watch_locks(locks)
        with pytest.raises(InvariantViolation) as exc:
            locks.release(3)
        assert exc.value.invariant == "double-release"

    def test_leaked_lock_hold(self):
        env, sanitizer = armed_env()
        locks = StripeLockManager(env)
        sanitizer.watch_locks(locks)

        def leaker():
            yield locks.acquire(2)

        env.process(leaker(), name="leaker")
        with pytest.raises(InvariantViolation) as exc:
            env.run()
        assert exc.value.invariant == "leaked-hold"
        assert "leaker" in exc.value.detail

    def test_leaked_resource_slot(self):
        env, sanitizer = armed_env()
        resource = CapacityResource(env, capacity=2, name="slots")
        sanitizer.watch_resource(resource)

        def leaker():
            yield resource.request()

        env.process(leaker(), name="leaker")
        with pytest.raises(InvariantViolation) as exc:
            env.run()
        assert exc.value.invariant == "leaked-hold"
        assert "slots" in exc.value.detail

    def test_clean_resource_usage_is_quiescent(self):
        env, sanitizer = armed_env()
        resource = CapacityResource(env, capacity=1, name="slots")
        sanitizer.watch_resource(resource)

        def user():
            yield resource.request()
            yield env.timeout(10)
            resource.release()

        env.process(user(), name="u1")
        env.process(user(), name="u2")
        env.run()
        assert sanitizer.violations == []
        sanitizer.check_quiescent()

    def test_armed_run_same_event_order(self):
        # the sanitized run loop must dispatch identically to the stock one
        def trace_run(env):
            order = []

            def ticker(tag, period):
                for _ in range(5):
                    yield env.timeout(period)
                    order.append((tag, env.now))

            env.process(ticker("a", 3), name="a")
            env.process(ticker("b", 5), name="b")
            env.run()
            return order

        plain = trace_run(Environment())
        env = Environment()
        KernelSanitizer(env)
        assert trace_run(env) == plain


def build_armed_draid(drives=4, stripes=8, chunk=4 * KB, verify=True):
    from repro.draid.host import DraidArray

    env = Environment()
    config = ClusterConfig(
        num_servers=drives,
        functional_capacity=stripes * chunk,
        verify=VerifyConfig() if verify else None,
    )
    cluster = build_cluster(env, config)
    geometry = RaidGeometry(RaidLevel.RAID5, drives, chunk)
    return env, cluster, DraidArray(cluster, geometry)


class TestSeededBugs:
    """Deliberately broken controllers must trip the right invariant."""

    def test_duplicate_ack_detected(self, monkeypatch):
        from repro.draid.bdev import DraidBdevServer

        env, cluster, array = build_armed_draid()
        orig = DraidBdevServer._complete

        def double_complete(self, origin, cid, kind, **kwargs):
            orig(self, origin, cid, kind, **kwargs)
            orig(self, origin, cid, kind, **kwargs)  # the bug: a second ack

        monkeypatch.setattr(DraidBdevServer, "_complete", double_complete)
        with pytest.raises(InvariantViolation) as exc:
            env.run(until=array.write(0, 4 * KB, b"\x5a" * 4 * KB))
        assert exc.value.invariant == "duplicate-completion"
        assert exc.value.cid is not None

    def test_lost_parity_fold_detected(self, monkeypatch):
        from repro.draid.bdev import DraidBdevServer

        env, cluster, array = build_armed_draid()
        orig = DraidBdevServer._maybe_finish_parity

        def eager_finish(self, key):
            # the bug: acknowledge the parity write as soon as the Parity
            # command arrives, without waiting for the promised partials
            state = self._parity_states.get(key)
            if state is not None and state.cmd is not None and state.wait_num:
                state.received = state.wait_num
            yield from orig(self, key)

        monkeypatch.setattr(DraidBdevServer, "_maybe_finish_parity", eager_finish)
        # a sub-stripe write drives the RMW path: data servers forward
        # partials that the parity server is supposed to fold
        with pytest.raises(InvariantViolation) as exc:
            env.run(until=array.write(0, 4 * KB, b"\xa5" * 4 * KB))
        assert exc.value.invariant == "premature-parity-completion"

    def test_fencing_beyond_parity_detected(self):
        env, cluster, array = build_armed_draid()
        # simulate a fencing decision gone wrong: two members fenced on a
        # RAID-5 geometry that tolerates one
        array.failed.update({0, 1})
        with pytest.raises(InvariantViolation) as exc:
            cluster.verify.check_fence(array)
        assert exc.value.invariant == "fencing-beyond-parity"

    def test_cid_reuse_detected(self):
        env, cluster, array = build_armed_draid()
        checker = cluster.verify.protocol
        checker.on_register(99, {"write": 2}, [0, 1])
        with pytest.raises(InvariantViolation) as exc:
            checker.on_register(99, {"write": 2}, [0, 1])
        assert exc.value.invariant == "cid-reuse"

    def test_clean_workload_is_violation_free(self):
        env, cluster, array = build_armed_draid()
        payload = bytes(range(256)) * 16
        env.run(until=array.write(0, 4 * KB, payload))
        data = env.run(until=array.read(0, 4 * KB))
        assert bytes(data) == payload
        assert cluster.verify.violations == []
        assert cluster.verify.protocol.checked_messages > 0
        cluster.verify.check_quiescent()


class TestProtocolCheckerUnits:
    def make_checker(self):
        from repro.verify.protocol import ProtocolChecker

        return ProtocolChecker(Environment())

    def test_late_completion_is_accounted_not_violated(self):
        checker = self.make_checker()

        class Comp:
            cid, kind, ok, trace = 7, "write", True, None

        checker.on_host_completion(0, Comp())  # never registered
        assert checker.late_completions == 1
        assert checker.violations == []

    def test_host_duplicate_completion(self):
        checker = self.make_checker()

        class Comp:
            cid, kind, ok, trace = 5, "write", True, None

        checker.on_register(5, {"write": 2}, [0, 1])
        checker.on_host_completion(0, Comp())
        checker.on_host_completion(1, Comp())  # different member: fine
        with pytest.raises(InvariantViolation) as exc:
            checker.on_host_completion(0, Comp())
        assert exc.value.invariant == "duplicate-completion"

    def test_parity_completion_requires_all_folds(self):
        checker = self.make_checker()
        checker.on_parity_cmd(server=3, cid=11, key=11, wait_num=2)
        checker.on_parity_fold(server=3, key=11)
        with pytest.raises(InvariantViolation) as exc:
            checker.on_server_completion(3, 11, "parity", ok=True)
        assert exc.value.invariant == "premature-parity-completion"
        assert "1/2" in exc.value.detail

    def test_parity_completion_clean_after_folds(self):
        checker = self.make_checker()
        checker.on_parity_cmd(server=3, cid=11, key=11, wait_num=2)
        checker.on_parity_fold(server=3, key=11)
        checker.on_parity_fold(server=3, key=11)
        checker.on_server_completion(3, 11, "parity", ok=True)
        assert checker.violations == []

    def test_unsolicited_parity_ack(self):
        checker = self.make_checker()
        with pytest.raises(InvariantViolation) as exc:
            checker.on_server_completion(0, 42, "parity", ok=True)
        assert exc.value.invariant == "premature-parity-completion"

    def test_server_crash_forgives_pending_folds(self):
        checker = self.make_checker()
        checker.on_parity_cmd(server=1, cid=8, key=8, wait_num=3)
        checker.on_server_crash(1)
        # post-crash retry under a fresh cid completes cleanly
        checker.on_parity_cmd(server=1, cid=9, key=9, wait_num=1)
        checker.on_parity_fold(server=1, key=9)
        checker.on_server_completion(1, 9, "parity", ok=True)
        assert checker.violations == []

    def test_nvmeof_duplicate_completion(self):
        checker = self.make_checker()
        checker.on_nvmeof_completion("bdev0", 3, ok=True)
        with pytest.raises(InvariantViolation) as exc:
            checker.on_nvmeof_completion("bdev0", 3, ok=True)
        assert exc.value.invariant == "duplicate-completion"


class TestZeroInterference:
    """Arming the verifier must not change simulated outcomes."""

    @pytest.mark.parametrize("system", ["md", "spdk", "draid"])
    def test_armed_fio_result_equals_unarmed(self, system):
        from repro.faults.chaos import _make_controller
        from repro.workloads.fio import FioWorkload

        def run(verify: bool):
            env = Environment()
            # timing mode: FioWorkload issues payload-less I/O
            config = ClusterConfig(
                num_servers=4,
                verify=VerifyConfig() if verify else None,
            )
            cluster = build_cluster(env, config)
            geometry = RaidGeometry(RaidLevel.RAID5, 4, 4 * KB)
            array = _make_controller(system, cluster, geometry)
            workload = FioWorkload(
                array, io_size=4 * KB, read_fraction=0.5, queue_depth=4,
                capacity=16 * 3 * 4 * KB, seed=77,
            )
            return workload.run(warmup_ns=500_000, measure_ns=3_000_000)

        assert run(verify=True) == run(verify=False)

    def test_verify_config_arms_hub(self):
        env = Environment()
        cluster = build_cluster(
            env, ClusterConfig(num_servers=4, verify=VerifyConfig())
        )
        assert isinstance(cluster.verify, Verifier)
        assert cluster.verify.kernel is not None
        assert cluster.verify.protocol is not None
        assert env.run.__self__ is cluster.verify.kernel

    def test_partial_arming(self):
        env = Environment()
        cluster = build_cluster(
            env,
            ClusterConfig(
                num_servers=4, verify=VerifyConfig(kernel=False, protocol=True)
            ),
        )
        assert cluster.verify.kernel is None
        assert cluster.verify.protocol is not None
