"""Tests for workload generators (FIO, YCSB, distributions) and metrics."""

import math

import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.draid import DraidArray
from repro.metrics import LatencyRecorder
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sim import Environment
from repro.workloads import (
    FioWorkload,
    LatestGenerator,
    UniformGenerator,
    YCSB_WORKLOADS,
    YcsbSpec,
    YcsbWorkload,
    ZipfianGenerator,
)

KB = 1024


def make_array(drives=5, chunk=64 * KB):
    env = Environment()
    cluster = build_cluster(env, ClusterConfig(num_servers=drives))
    return DraidArray(cluster, RaidGeometry(RaidLevel.RAID5, drives, chunk))


class TestLatencyRecorder:
    def test_summary_statistics(self):
        rec = LatencyRecorder()
        for v in [100, 200, 300, 400, 500]:
            rec.record(v)
        s = rec.summarize()
        assert s.count == 5
        assert s.mean_ns == 300
        assert s.p50_ns == 300
        assert s.max_ns == 500
        assert s.mean_us == pytest.approx(0.3)

    def test_percentile_interpolation(self):
        rec = LatencyRecorder()
        rec.record(0)
        rec.record(100)
        s = rec.summarize()
        assert s.p50_ns == 50
        assert s.p90_ns == 90

    def test_empty_summary(self):
        s = LatencyRecorder().summarize()
        assert s.count == 0
        assert s.mean_ns == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1)

    def test_reset(self):
        rec = LatencyRecorder()
        rec.record(5)
        rec.reset()
        assert len(rec) == 0


class TestGenerators:
    def test_uniform_bounds(self):
        gen = UniformGenerator(100, seed=1)
        values = [gen.next() for _ in range(1000)]
        assert min(values) >= 0
        assert max(values) < 100

    def test_zipfian_is_skewed(self):
        gen = ZipfianGenerator(10_000, seed=2)
        values = [gen.next() for _ in range(20_000)]
        assert all(0 <= v < 10_000 for v in values)
        # YCSB zipfian(0.99): the head of the keyspace dominates
        head = sum(1 for v in values if v < 100)
        assert head > len(values) * 0.3

    def test_zipfian_determinism(self):
        a = ZipfianGenerator(1000, seed=3)
        b = ZipfianGenerator(1000, seed=3)
        assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]

    def test_latest_prefers_recent(self):
        gen = LatestGenerator(1000, seed=4)
        values = [gen.next() for _ in range(5000)]
        recent = sum(1 for v in values if v > 900)
        assert recent > len(values) * 0.3

    def test_latest_insert_grows_keyspace(self):
        gen = LatestGenerator(10, seed=5)
        new_key = gen.record_insert()
        assert new_key == 10
        assert gen.count == 11

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            UniformGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(100, theta=1.5)


class TestFio:
    def test_measures_bandwidth_and_latency(self):
        array = make_array()
        fio = FioWorkload(array, 64 * KB, read_fraction=1.0, queue_depth=8)
        result = fio.run(warmup_ns=1_000_000, measure_ns=5_000_000)
        assert result.bandwidth_mb_s > 0
        assert result.latency.count == result.ops_completed
        assert result.ops_completed > 10
        assert result.bandwidth_gbps == pytest.approx(result.bandwidth_mb_s * 8 / 1000)

    def test_read_write_mix_recorded_separately(self):
        array = make_array()
        fio = FioWorkload(array, 64 * KB, read_fraction=0.5, queue_depth=8)
        fio.run(warmup_ns=500_000, measure_ns=5_000_000)
        assert len(fio.reads) > 0
        assert len(fio.writes) > 0

    def test_deterministic_given_seed(self):
        def run():
            array = make_array()
            fio = FioWorkload(array, 64 * KB, read_fraction=0.3, queue_depth=4, seed=7)
            return fio.run(warmup_ns=500_000, measure_ns=3_000_000).ops_completed

        assert run() == run()

    def test_higher_qd_more_throughput_until_saturation(self):
        def bw(qd):
            array = make_array()
            fio = FioWorkload(array, 128 * KB, read_fraction=1.0, queue_depth=qd)
            return fio.run(warmup_ns=500_000, measure_ns=5_000_000).bandwidth_mb_s

        assert bw(8) > 1.5 * bw(1)

    def test_invalid_parameters(self):
        array = make_array()
        with pytest.raises(ValueError):
            FioWorkload(array, 0)
        with pytest.raises(ValueError):
            FioWorkload(array, 4096, read_fraction=2.0)
        with pytest.raises(ValueError):
            FioWorkload(array, 4096, queue_depth=0)


class _CountingStore:
    """KV stub recording which ops the YCSB driver issued."""

    def __init__(self, env):
        self.env = env
        self.ops = {"get": 0, "put": 0}

    def get(self, key):
        self.ops["get"] += 1
        return self.env.timeout(1000)

    def put(self, key):
        self.ops["put"] += 1
        return self.env.timeout(1000)


class TestYcsb:
    def test_workload_definitions_sum_to_one(self):
        for spec in YCSB_WORKLOADS.values():
            total = spec.read + spec.update + spec.insert + spec.rmw + spec.scan
            assert total == pytest.approx(1.0)

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            YcsbSpec("bad", read=0.5)

    def test_workload_a_mix(self):
        env = Environment()
        store = _CountingStore(env)
        ycsb = YcsbWorkload(store, YCSB_WORKLOADS["A"], num_keys=100, clients=4)
        result = ycsb.run(warmup_ns=10_000, measure_ns=2_000_000)
        assert result.ops_completed > 100
        total = store.ops["get"] + store.ops["put"]
        # A is 50/50 read/update
        assert 0.35 < store.ops["get"] / total < 0.65

    def test_workload_c_read_only(self):
        env = Environment()
        store = _CountingStore(env)
        ycsb = YcsbWorkload(store, YCSB_WORKLOADS["C"], num_keys=100, clients=4)
        ycsb.run(warmup_ns=10_000, measure_ns=1_000_000)
        assert store.ops["put"] == 0

    def test_workload_f_rmw_pairs(self):
        env = Environment()
        store = _CountingStore(env)
        ycsb = YcsbWorkload(store, YCSB_WORKLOADS["F"], num_keys=100, clients=2)
        ycsb.run(warmup_ns=10_000, measure_ns=1_000_000)
        # F: 50% read, 50% read-modify-write => gets ~ 3x puts
        assert store.ops["get"] > 2 * store.ops["put"]

    def test_kiops_accounting(self):
        env = Environment()
        store = _CountingStore(env)
        ycsb = YcsbWorkload(store, YCSB_WORKLOADS["C"], num_keys=10, clients=1)
        result = ycsb.run(warmup_ns=0, measure_ns=1_000_000)
        # each op takes 1 us => ~1000 ops in 1 ms => ~1000 KIOPS
        assert result.kiops == pytest.approx(1000, rel=0.1)
